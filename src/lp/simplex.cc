#include "src/lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/invariant.h"
#include "src/common/status.h"
#include "src/common/timer.h"
#include "src/lp/lu_factor.h"

namespace slp::lp {

const char* ToString(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal: return "OPTIMAL";
    case SolveStatus::kInfeasible: return "INFEASIBLE";
    case SolveStatus::kUnbounded: return "UNBOUNDED";
    case SolveStatus::kIterationLimit: return "ITERATION_LIMIT";
  }
  return "UNKNOWN";
}

namespace {

constexpr double kInf = kInfinity;
// Absolute floor for acceptable pivots inside the LU factorization.
constexpr double kFactorPivotEps = 1e-12;

// ---------------------------------------------------------------------------
// Legacy dense engine.
//
// Keeps an explicit dense basis inverse (O(m^2) memory, O(m^2) work per
// pivot). Retained as the reference implementation: the stress tests
// cross-check the sparse engine against it, and bench_lp measures speedups
// relative to it. Columns are laid out as [structural | slack | artificial];
// every column is stored sparsely.
class DenseTableau {
 public:
  DenseTableau(const LpProblem& problem, const SimplexOptions& options)
      : options_(options), m_(problem.num_constraints()) {
    BuildColumns(problem);
    InitBasis(problem);
  }

  LpSolution Run(const LpProblem& problem) {
    LpSolution solution;
    const int max_iters = options_.max_iterations > 0
                              ? options_.max_iterations
                              : std::max(20000, 50 * m_);

    // Phase 1: minimize the sum of artificial variables.
    if (num_art_ > 0) {
      SetPhase1Costs();
      RecomputeDuals();
      const SolveStatus st = Iterate(max_iters, &solution.iterations);
      if (st == SolveStatus::kIterationLimit) {
        solution.status = st;
        return solution;
      }
      SLP_DCHECK(st != SolveStatus::kUnbounded);  // phase-1 obj bounded below
      if (CurrentObjective() > options_.feasibility_tol * (1 + rhs_norm_)) {
        solution.status = SolveStatus::kInfeasible;
        solution.stats.phase1_pivots = solution.iterations;
        return solution;
      }
      // Pin artificials at zero for phase 2 (their values are within the
      // feasibility tolerance of zero at this point).
      for (int j = art_begin_; j < total_cols_; ++j) {
        lo_[j] = 0;
        hi_[j] = 0;
        xval_[j] = 0;
      }
    }
    solution.stats.phase1_pivots = solution.iterations;

    // Phase 2: the true objective.
    SetPhase2Costs(problem);
    RecomputeDuals();
    const SolveStatus st = Iterate(max_iters, &solution.iterations);
    solution.status = st;
    if (st != SolveStatus::kOptimal) return solution;

    solution.x.assign(xval_.begin(), xval_.begin() + num_struct_);
    solution.objective = 0;
    for (int j = 0; j < num_struct_; ++j) {
      solution.objective += problem.obj(j) * solution.x[j];
    }
    RecomputeDuals();
    solution.duals = y_;
    ExportBasis(&solution.basis);
    return solution;
  }

 private:
  void BuildColumns(const LpProblem& problem) {
    num_struct_ = problem.num_vars();
    const LpProblem::Columns cols = problem.BuildColumns();

    col_start_.assign(1, 0);
    for (int j = 0; j < num_struct_; ++j) {
      for (int p = cols.col_start[j]; p < cols.col_start[j + 1]; ++p) {
        entry_row_.push_back(cols.row[p]);
        entry_coef_.push_back(cols.coef[p]);
      }
      col_start_.push_back(static_cast<int>(entry_row_.size()));
      lo_.push_back(problem.lo(j));
      hi_.push_back(problem.hi(j));
    }

    // Slack columns: <= rows get +1 slack in [0, inf); >= rows get -1 slack
    // in [0, inf); = rows get none.
    slack_begin_ = num_struct_;
    slack_col_of_row_.assign(m_, -1);
    for (int i = 0; i < m_; ++i) {
      const Sense s = problem.sense(i);
      if (s == Sense::kEqual) continue;
      const double coef = (s == Sense::kLessEqual) ? 1.0 : -1.0;
      slack_col_of_row_[i] = static_cast<int>(col_start_.size()) - 1;
      entry_row_.push_back(i);
      entry_coef_.push_back(coef);
      col_start_.push_back(static_cast<int>(entry_row_.size()));
      lo_.push_back(0);
      hi_.push_back(kInf);
    }
    art_begin_ = static_cast<int>(col_start_.size()) - 1;

    rhs_.resize(m_);
    rhs_norm_ = 0;
    for (int i = 0; i < m_; ++i) {
      rhs_[i] = problem.rhs(i);
      rhs_norm_ = std::max(rhs_norm_, std::abs(rhs_[i]));
    }
  }

  // Nonbasic structural variables start at their lower bound. Each row is
  // made basic-feasible with its slack when the slack's sign allows it, or
  // with a fresh artificial otherwise.
  void InitBasis(const LpProblem& problem) {
    const int pre_cols = art_begin_;
    xval_.assign(pre_cols, 0.0);
    at_upper_.assign(pre_cols, false);
    for (int j = 0; j < num_struct_; ++j) xval_[j] = lo_[j];

    // Row residuals with all current columns at their values.
    std::vector<double> resid = rhs_;
    for (int j = 0; j < num_struct_; ++j) {
      if (xval_[j] == 0) continue;
      for (int p = col_start_[j]; p < col_start_[j + 1]; ++p) {
        resid[entry_row_[p]] -= entry_coef_[p] * xval_[j];
      }
    }

    basis_.assign(m_, -1);
    std::vector<double> basic_value(m_, 0.0);
    num_art_ = 0;
    for (int i = 0; i < m_; ++i) {
      const Sense s = problem.sense(i);
      const double r = resid[i];
      const int sc = slack_col_of_row_[i];
      bool use_slack = false;
      if (s == Sense::kLessEqual && r >= 0) use_slack = true;
      if (s == Sense::kGreaterEqual && r <= 0) use_slack = true;
      if (use_slack) {
        basis_[i] = sc;
        basic_value[i] = std::abs(r);  // s = r for <=, s = -r for >=
      } else {
        // Artificial with coefficient sign matching the residual so its
        // basic value is |r| >= 0.
        const double coef = (r >= 0) ? 1.0 : -1.0;
        entry_row_.push_back(i);
        entry_coef_.push_back(coef);
        col_start_.push_back(static_cast<int>(entry_row_.size()));
        lo_.push_back(0);
        hi_.push_back(kInf);
        xval_.push_back(0);
        at_upper_.push_back(false);
        const int ac = static_cast<int>(col_start_.size()) - 2 + 1 - 1;
        basis_[i] = ac;
        basic_value[i] = std::abs(r);
        ++num_art_;
      }
    }
    total_cols_ = static_cast<int>(col_start_.size()) - 1;

    basic_row_.assign(total_cols_, -1);
    for (int i = 0; i < m_; ++i) {
      basic_row_[basis_[i]] = i;
      xval_[basis_[i]] = basic_value[i];
    }

    // The initial basis matrix is diagonal with entries +-1 (slacks and
    // artificials are singleton columns).
    binv_.assign(static_cast<size_t>(m_) * m_, 0.0);
    for (int i = 0; i < m_; ++i) {
      const int c = basis_[i];
      const double coef = entry_coef_[col_start_[c]];
      binv_[static_cast<size_t>(i) * m_ + i] = 1.0 / coef;
    }
    cost_.assign(total_cols_, 0.0);
  }

  void SetPhase1Costs() {
    std::fill(cost_.begin(), cost_.end(), 0.0);
    for (int j = art_begin_; j < total_cols_; ++j) cost_[j] = 1.0;
  }

  void SetPhase2Costs(const LpProblem& problem) {
    std::fill(cost_.begin(), cost_.end(), 0.0);
    for (int j = 0; j < num_struct_; ++j) cost_[j] = problem.obj(j);
  }

  double CurrentObjective() const {
    double obj = 0;
    for (int j = 0; j < total_cols_; ++j) obj += cost_[j] * xval_[j];
    return obj;
  }

  // y = c_B^T * Binv.
  void RecomputeDuals() {
    y_.assign(m_, 0.0);
    for (int i = 0; i < m_; ++i) {
      const double cb = cost_[basis_[i]];
      if (cb == 0) continue;
      const double* row = &binv_[static_cast<size_t>(i) * m_];
      for (int k = 0; k < m_; ++k) y_[k] += cb * row[k];
    }
  }

  double ReducedCost(int j) const {
    double d = cost_[j];
    for (int p = col_start_[j]; p < col_start_[j + 1]; ++p) {
      d -= y_[entry_row_[p]] * entry_coef_[p];
    }
    return d;
  }

  // Recomputes x_B = Binv * (b - N x_N) to kill accumulated drift.
  void RecomputeBasicValues() {
    std::vector<double> r = rhs_;
    for (int j = 0; j < total_cols_; ++j) {
      if (basic_row_[j] >= 0 || xval_[j] == 0) continue;
      for (int p = col_start_[j]; p < col_start_[j + 1]; ++p) {
        r[entry_row_[p]] -= entry_coef_[p] * xval_[j];
      }
    }
    for (int i = 0; i < m_; ++i) {
      const double* row = &binv_[static_cast<size_t>(i) * m_];
      double v = 0;
      for (int k = 0; k < m_; ++k) v += row[k] * r[k];
      xval_[basis_[i]] = v;
    }
  }

  // Rebuilds binv_ from the basis columns by Gauss-Jordan elimination with
  // partial pivoting. CHECK-fails on a singular basis (cannot happen if the
  // pivot steps kept |pivot| above tolerance).
  void Refactorize() {
    std::vector<double> mat(static_cast<size_t>(m_) * m_, 0.0);
    for (int i = 0; i < m_; ++i) {
      const int c = basis_[i];
      for (int p = col_start_[c]; p < col_start_[c + 1]; ++p) {
        mat[static_cast<size_t>(entry_row_[p]) * m_ + i] = entry_coef_[p];
      }
    }
    std::vector<double>& inv = binv_;
    std::fill(inv.begin(), inv.end(), 0.0);
    for (int i = 0; i < m_; ++i) inv[static_cast<size_t>(i) * m_ + i] = 1.0;
    // Note: binv_ rows correspond to basis positions; we invert `mat` whose
    // column i is the basis column at position i, producing mat^{-1} laid
    // out so that row i of inv maps rhs-space to basis position i.
    for (int col = 0; col < m_; ++col) {
      int piv = -1;
      double best = 0;
      for (int r = col; r < m_; ++r) {
        const double v = std::abs(mat[static_cast<size_t>(r) * m_ + col]);
        if (v > best) {
          best = v;
          piv = r;
        }
      }
      SLP_DCHECK(piv >= 0 && best > 1e-12);
      if (piv != col) {
        for (int k = 0; k < m_; ++k) {
          std::swap(mat[static_cast<size_t>(piv) * m_ + k],
                    mat[static_cast<size_t>(col) * m_ + k]);
          std::swap(inv[static_cast<size_t>(piv) * m_ + k],
                    inv[static_cast<size_t>(col) * m_ + k]);
        }
      }
      const double p = mat[static_cast<size_t>(col) * m_ + col];
      for (int k = 0; k < m_; ++k) {
        mat[static_cast<size_t>(col) * m_ + k] /= p;
        inv[static_cast<size_t>(col) * m_ + k] /= p;
      }
      for (int r = 0; r < m_; ++r) {
        if (r == col) continue;
        const double f = mat[static_cast<size_t>(r) * m_ + col];
        if (f == 0) continue;
        for (int k = 0; k < m_; ++k) {
          mat[static_cast<size_t>(r) * m_ + k] -=
              f * mat[static_cast<size_t>(col) * m_ + k];
          inv[static_cast<size_t>(r) * m_ + k] -=
              f * inv[static_cast<size_t>(col) * m_ + k];
        }
      }
    }
  }

  double EnteringDelta(int j, double d) const {
    // Positive improvement magnitude for an eligible nonbasic column.
    if (!at_upper_[j] && d < -options_.optimality_tol) return -d;
    if (at_upper_[j] && d > options_.optimality_tol && hi_[j] < kInf) return d;
    return 0;
  }

  bool Eligible(int j) const {
    return basic_row_[j] < 0 && lo_[j] < hi_[j];
  }

  // Maps the final basis into per-variable / per-row statuses. A basic
  // slack or artificial marks its row's logical variable basic.
  void ExportBasis(Basis* out) const {
    out->structural.resize(num_struct_);
    for (int j = 0; j < num_struct_; ++j) {
      out->structural[j] = basic_row_[j] >= 0 ? VarStatus::kBasic
                           : at_upper_[j]     ? VarStatus::kAtUpper
                                              : VarStatus::kAtLower;
    }
    out->logical.assign(m_, VarStatus::kAtLower);
    for (int i = 0; i < m_; ++i) {
      const int c = basis_[i];
      if (c < num_struct_) continue;
      out->logical[entry_row_[col_start_[c]]] = VarStatus::kBasic;
    }
  }

  // One phase of primal simplex on the current costs. Returns kOptimal when
  // no eligible entering column remains.
  SolveStatus Iterate(int max_iters, int* iteration_counter) {
    int since_recompute = 0;
    int since_refactor = 0;
    int stall = 0;
    bool bland = false;
    bool verified = false;  // optimality confirmed with fresh duals
    double last_obj = CurrentObjective();
    int price_cursor = 0;

    while (true) {
      if (*iteration_counter >= max_iters) return SolveStatus::kIterationLimit;

      // ---- Pricing ----
      int q = -1;
      double best_delta = 0;
      if (bland) {
        for (int j = 0; j < total_cols_; ++j) {
          if (!Eligible(j)) continue;
          if (EnteringDelta(j, ReducedCost(j)) > 0) {
            q = j;
            break;
          }
        }
      } else {
        // Small partial-pricing sections: the rotating cursor already gives
        // every column a regular turn, so a narrow window changes the pivot
        // sequence only marginally while making each pricing pass cheap.
        const int window = std::max(200, total_cols_ / 32);
        int scanned = 0;
        int j = price_cursor;
        while (scanned < total_cols_) {
          if (Eligible(j)) {
            const double delta = EnteringDelta(j, ReducedCost(j));
            if (delta > best_delta) {
              best_delta = delta;
              q = j;
            }
          }
          ++scanned;
          ++j;
          if (j >= total_cols_) j = 0;
          if (q >= 0 && scanned >= window) break;
        }
        price_cursor = j;
      }
      if (q < 0) {
        // The incremental duals drift; confirm optimality with a fresh
        // recompute before declaring victory.
        if (verified) return SolveStatus::kOptimal;
        RecomputeBasicValues();
        RecomputeDuals();
        verified = true;
        continue;
      }
      verified = false;

      ++(*iteration_counter);

      // ---- FTRAN: w = Binv * A_q ----
      w_.assign(m_, 0.0);
      for (int p = col_start_[q]; p < col_start_[q + 1]; ++p) {
        const int row = entry_row_[p];
        const double coef = entry_coef_[p];
        for (int i = 0; i < m_; ++i) {
          w_[i] += binv_[static_cast<size_t>(i) * m_ + row] * coef;
        }
      }

      const double d_q = ReducedCost(q);
      const double sigma = at_upper_[q] ? -1.0 : 1.0;

      // ---- Ratio test ----
      // Entering moves by theta >= 0 in direction sigma; basic i changes by
      // -sigma * w_i * theta.
      double theta = (hi_[q] < kInf) ? hi_[q] - lo_[q] : kInf;  // bound flip
      int leave = -1;          // row index of leaving variable
      double leave_pivot = 0;  // w_[leave]
      bool leave_at_upper = false;
      for (int i = 0; i < m_; ++i) {
        const double delta = sigma * w_[i];
        if (std::abs(delta) <= options_.pivot_tol) continue;
        const int bcol = basis_[i];
        double limit;
        bool hits_upper;
        if (delta > 0) {
          limit = (xval_[bcol] - lo_[bcol]) / delta;
          hits_upper = false;
        } else {
          if (hi_[bcol] >= kInf) continue;
          limit = (hi_[bcol] - xval_[bcol]) / (-delta);
          hits_upper = true;
        }
        if (limit < 0) limit = 0;
        // Prefer strictly smaller limits; among near-ties take the larger
        // pivot magnitude for stability (or the smaller index under Bland).
        const bool better =
            limit < theta - 1e-10 ||
            (limit < theta + 1e-10 && leave >= 0 &&
             (bland ? basis_[i] < basis_[leave]
                    : std::abs(w_[i]) > std::abs(leave_pivot)));
        if (better || (leave < 0 && limit < theta - 1e-10)) {
          theta = std::min(theta, limit);
          leave = i;
          leave_pivot = w_[i];
          leave_at_upper = hits_upper;
        }
      }

      if (theta >= kInf) return SolveStatus::kUnbounded;

      // ---- Apply the step ----
      if (theta > 0) {
        for (int i = 0; i < m_; ++i) {
          if (w_[i] != 0) xval_[basis_[i]] -= sigma * theta * w_[i];
        }
      }

      if (leave < 0) {
        // Bound flip: q moves to its opposite bound; basis unchanged.
        at_upper_[q] = !at_upper_[q];
        xval_[q] = at_upper_[q] ? hi_[q] : lo_[q];
      } else {
        const int lcol = basis_[leave];
        xval_[q] = (at_upper_[q] ? hi_[q] : lo_[q]) + sigma * theta;
        // Snap the leaving variable onto the bound it reached.
        xval_[lcol] = leave_at_upper ? hi_[lcol] : lo_[lcol];
        at_upper_[lcol] = leave_at_upper;
        basis_[leave] = q;
        basic_row_[q] = leave;
        basic_row_[lcol] = -1;

        // ---- Update Binv (product form) ----
        double* prow = &binv_[static_cast<size_t>(leave) * m_];
        const double inv_pivot = 1.0 / leave_pivot;
        for (int k = 0; k < m_; ++k) prow[k] *= inv_pivot;
        for (int i = 0; i < m_; ++i) {
          if (i == leave) continue;
          const double f = w_[i];
          if (f == 0) continue;
          double* irow = &binv_[static_cast<size_t>(i) * m_];
          for (int k = 0; k < m_; ++k) irow[k] -= f * prow[k];
        }
        // Incremental dual update: y += d_q * (new row `leave` of Binv).
        for (int k = 0; k < m_; ++k) y_[k] += d_q * prow[k];

        ++since_recompute;
        ++since_refactor;
      }

      // ---- Housekeeping ----
      if (since_refactor >= options_.refactor_interval) {
        Refactorize();
        RecomputeBasicValues();
        RecomputeDuals();
        since_refactor = 0;
        since_recompute = 0;
      } else if (since_recompute >= options_.recompute_interval) {
        RecomputeBasicValues();
        RecomputeDuals();
        since_recompute = 0;
      }

      const double obj = CurrentObjective();
      if (obj < last_obj - 1e-12) {
        stall = 0;
        last_obj = obj;
      } else if (++stall > options_.stall_threshold && !bland) {
        bland = true;  // guarantee termination on degenerate instances
        RecomputeDuals();
      }
    }
  }

  const SimplexOptions options_;
  const int m_;  // rows

  // Sparse columns, contiguous across [structural | slack | artificial].
  std::vector<int> col_start_;
  std::vector<int> entry_row_;
  std::vector<double> entry_coef_;
  std::vector<double> lo_, hi_, cost_, xval_;
  std::vector<bool> at_upper_;
  std::vector<double> rhs_;
  double rhs_norm_ = 0;

  int num_struct_ = 0;
  int slack_begin_ = 0;
  int art_begin_ = 0;
  int total_cols_ = 0;
  int num_art_ = 0;
  std::vector<int> slack_col_of_row_;

  std::vector<int> basis_;      // basis_[row] = column basic in that row
  std::vector<int> basic_row_;  // inverse map, -1 when nonbasic
  std::vector<double> binv_;    // dense m x m, row-major
  std::vector<double> y_;       // duals
  std::vector<double> w_;       // FTRAN scratch
};

// ---------------------------------------------------------------------------
// Sparse revised-simplex engine.
//
// Same column layout, pricing, ratio test, and two-phase structure as the
// dense engine, but the basis inverse is replaced by a BasisFactorization
// (sparse LU + bounded eta file), so a pivot costs an FTRAN, a sparse
// unit-vector BTRAN for the dual update, and one appended eta — O(m + fill)
// instead of O(m^2). Basis "positions" are decoupled from constraint rows
// here: basis_[p] is the column occupying position p, and FTRAN output /
// ratio-test / eta indices all live in position space, while rhs, duals and
// column entries live in row space.
//
// Warm start: a Basis hint seeds basis_/at_upper_, the crashed basis is
// factorized (numerically dependent columns are repaired with pinned
// artificials), and x_B is computed. If the crashed point is primal
// feasible, phase 1 is skipped entirely; otherwise a few feasibility-
// restoration rounds run (out-of-bound basic variables get a working box
// [bound, x] and a +-1 surrogate cost driving them back inside; everything
// else keeps its true bounds, so feasible variables stay feasible). If
// restoration stalls, the engine falls back to a cold two-phase start —
// warm starting is an accelerator, never a correctness risk.
class SparseTableau {
 public:
  SparseTableau(const LpProblem& problem, const SimplexOptions& options,
                const Basis* hint)
      : options_(options), m_(problem.num_constraints()) {
    BuildColumns(problem);
    bool tried_warm = false;
    if (hint != nullptr && !hint->empty() &&
        hint->CompatibleWith(problem.num_vars(), m_)) {
      tried_warm = true;
      warm_ok_ = TryWarmStart(*hint);
    }
    if (!warm_ok_) {
      if (tried_warm) ResetModel(problem);  // discard partial crash state
      InitCold(problem);
    }
  }

  LpSolution Run(const LpProblem& problem) {
    LpSolution solution;
    const int max_iters = options_.max_iterations > 0
                              ? options_.max_iterations
                              : std::max(20000, 50 * m_);

    // ---- Reach primal feasibility ----
    if (warm_ok_) {
      stats_.warm_started = true;
      bool feasible = CountViolations() == 0;
      stats_.warm_feasible = feasible;
      for (int round = 0; round < 3 && !feasible; ++round) {
        ++stats_.warm_restoration_rounds;
        std::vector<SavedBound> saved;
        BoxViolators(&saved);
        RecomputeDuals();
        const SolveStatus st = Iterate(max_iters, &solution.iterations);
        RestoreTrueBounds(saved);
        if (st == SolveStatus::kIterationLimit) {
          solution.status = st;
          return Finish(std::move(solution));
        }
        if (st != SolveStatus::kOptimal) break;
        feasible = CountViolations() == 0;
      }
      if (!feasible) {
        // Restoration could not reach the true bounds: discard the hint and
        // cold-start so infeasibility is decided by the real phase 1. Keep
        // the warm accounting so the caller can see the hint was accepted
        // but ultimately useless (the fallback used to be silent).
        const SolverStats warm_trail = stats_;
        stats_ = SolverStats{};
        stats_.warm_started = warm_trail.warm_started;
        stats_.warm_restoration_rounds = warm_trail.warm_restoration_rounds;
        stats_.warm_fell_back_cold = true;
        warm_ok_ = false;
        ResetModel(problem);
        InitCold(problem);
      }
    }
    if (!warm_ok_ && num_art_ > 0) {
      SetPhase1Costs();
      RecomputeDuals();
      const SolveStatus st = Iterate(max_iters, &solution.iterations);
      if (st == SolveStatus::kIterationLimit) {
        solution.status = st;
        return Finish(std::move(solution));
      }
      SLP_DCHECK(st != SolveStatus::kUnbounded);  // phase-1 obj bounded below
      if (CurrentObjective() > options_.feasibility_tol * (1 + rhs_norm_)) {
        solution.status = SolveStatus::kInfeasible;
        stats_.phase1_pivots = solution.iterations;
        return Finish(std::move(solution));
      }
      for (int j = art_begin_; j < total_cols_; ++j) {
        lo_[j] = 0;
        hi_[j] = 0;
        xval_[j] = 0;
      }
    }
    stats_.phase1_pivots = solution.iterations;

    // ---- Phase 2 ----
    SetPhase2Costs(problem);
    RecomputeDuals();
    const SolveStatus st = Iterate(max_iters, &solution.iterations);
    solution.status = st;
    if (st != SolveStatus::kOptimal) return Finish(std::move(solution));

    solution.x.assign(xval_.begin(), xval_.begin() + num_struct_);
    solution.objective = 0;
    for (int j = 0; j < num_struct_; ++j) {
      solution.objective += problem.obj(j) * solution.x[j];
    }
    RecomputeDuals();
    solution.duals = y_;
    ExportBasis(&solution.basis);
    return Finish(std::move(solution));
  }

  // Dual-simplex re-solve from the crashed hint basis. Returns nullopt when
  // the caller should fall back to the primal warm-start path: the hint was
  // rejected, the crashed basis is not dual-feasible (and bound flips can't
  // make it so), the dual loop stalls or breaks down numerically, or it
  // detects infeasibility (the primal phase 1 stays the only authority that
  // declares a problem infeasible).
  std::optional<LpSolution> RunDual(const LpProblem& problem) {
    if (!warm_ok_) return std::nullopt;
    LpSolution solution;
    const int max_iters = options_.max_iterations > 0
                              ? options_.max_iterations
                              : std::max(20000, 50 * m_);
    stats_.warm_started = true;
    stats_.warm_feasible = CountViolations() == 0;
    SetPhase2Costs(problem);
    RecomputeDuals();
    if (!RestoreDualFeasibility()) return std::nullopt;
    stats_.dual_used = true;

    const std::optional<SolveStatus> st =
        IterateDual(max_iters, &solution.iterations);
    if (!st.has_value()) return std::nullopt;
    solution.status = *st;
    if (*st != SolveStatus::kOptimal) return Finish(std::move(solution));

    solution.x.assign(xval_.begin(), xval_.begin() + num_struct_);
    solution.objective = 0;
    for (int j = 0; j < num_struct_; ++j) {
      solution.objective += problem.obj(j) * solution.x[j];
    }
    RecomputeDuals();
    solution.duals = y_;
    ExportBasis(&solution.basis);
    return Finish(std::move(solution));
  }

 private:
  struct SavedBound {
    int col;
    double lo;
    double hi;
  };

  LpSolution Finish(LpSolution solution) {
    if (ftran_count_ > 0) {
      stats_.avg_ftran_density = ftran_density_sum_ / ftran_count_;
    }
    solution.stats = stats_;
    return solution;
  }

  void BuildColumns(const LpProblem& problem) {
    num_struct_ = problem.num_vars();
    const LpProblem::Columns cols = problem.BuildColumns();

    col_start_.assign(1, 0);
    entry_row_.clear();
    entry_coef_.clear();
    lo_.clear();
    hi_.clear();
    for (int j = 0; j < num_struct_; ++j) {
      for (int p = cols.col_start[j]; p < cols.col_start[j + 1]; ++p) {
        entry_row_.push_back(cols.row[p]);
        entry_coef_.push_back(cols.coef[p]);
      }
      col_start_.push_back(static_cast<int>(entry_row_.size()));
      lo_.push_back(problem.lo(j));
      hi_.push_back(problem.hi(j));
    }

    slack_begin_ = num_struct_;
    slack_col_of_row_.assign(m_, -1);
    for (int i = 0; i < m_; ++i) {
      const Sense s = problem.sense(i);
      if (s == Sense::kEqual) continue;
      const double coef = (s == Sense::kLessEqual) ? 1.0 : -1.0;
      slack_col_of_row_[i] = static_cast<int>(col_start_.size()) - 1;
      entry_row_.push_back(i);
      entry_coef_.push_back(coef);
      col_start_.push_back(static_cast<int>(entry_row_.size()));
      lo_.push_back(0);
      hi_.push_back(kInf);
    }
    art_begin_ = static_cast<int>(col_start_.size()) - 1;
    total_cols_ = art_begin_;
    num_art_ = 0;

    xval_.assign(total_cols_, 0.0);
    at_upper_.assign(total_cols_, false);

    rhs_.resize(m_);
    rhs_norm_ = 0;
    for (int i = 0; i < m_; ++i) {
      rhs_[i] = problem.rhs(i);
      rhs_norm_ = std::max(rhs_norm_, std::abs(rhs_[i]));
    }

    w_vec_.Resize(m_);
    rho_.Resize(m_);
    cb_.Resize(m_);
    rhs_work_.Resize(m_);
    y_.assign(m_, 0.0);
    resid_scratch_.assign(m_, 0.0);
  }

  // Drops warm-start artificials and restores the pristine column set.
  void ResetModel(const LpProblem& problem) { BuildColumns(problem); }

  // Appends an artificial column `coef`·e_row with bounds [lo, hi].
  int AddArtificial(int row, double coef, double lo, double hi) {
    entry_row_.push_back(row);
    entry_coef_.push_back(coef);
    col_start_.push_back(static_cast<int>(entry_row_.size()));
    lo_.push_back(lo);
    hi_.push_back(hi);
    xval_.push_back(0);
    at_upper_.push_back(false);
    ++total_cols_;
    return total_cols_ - 1;
  }

  void InitCold(const LpProblem& problem) {
    for (int j = 0; j < num_struct_; ++j) xval_[j] = lo_[j];

    std::vector<double> resid = rhs_;
    for (int j = 0; j < num_struct_; ++j) {
      if (xval_[j] == 0) continue;
      for (int p = col_start_[j]; p < col_start_[j + 1]; ++p) {
        resid[entry_row_[p]] -= entry_coef_[p] * xval_[j];
      }
    }

    basis_.assign(m_, -1);
    std::vector<double> basic_value(m_, 0.0);
    for (int i = 0; i < m_; ++i) {
      const Sense s = problem.sense(i);
      const double r = resid[i];
      const int sc = slack_col_of_row_[i];
      bool use_slack = false;
      if (s == Sense::kLessEqual && r >= 0) use_slack = true;
      if (s == Sense::kGreaterEqual && r <= 0) use_slack = true;
      if (use_slack) {
        basis_[i] = sc;
        basic_value[i] = std::abs(r);
      } else {
        const double coef = (r >= 0) ? 1.0 : -1.0;
        basis_[i] = AddArtificial(i, coef, 0, kInf);
        basic_value[i] = std::abs(r);
        ++num_art_;
      }
    }

    basic_row_.assign(total_cols_, -1);
    for (int i = 0; i < m_; ++i) {
      basic_row_[basis_[i]] = i;
      xval_[basis_[i]] = basic_value[i];
    }

    // Initial basis is diagonal (+-1 singleton columns): factorization is
    // trivially nonsingular.
    const auto repairs = factor_.Factorize(col_start_, entry_row_, entry_coef_,
                                           basis_, m_, kFactorPivotEps);
    SLP_INVARIANT(audit::Category::kBasis, repairs.empty(),
                  "cold-start diagonal basis required repairs");
    ++stats_.refactorizations;
  }

  // Crash the basis from a hint. Returns false (leaving partially mutated
  // state for ResetModel to discard) when the hint can't produce a full
  // basis. Repairs from the factorization get pinned artificials; any
  // resulting bound violations are handled by the restoration rounds.
  bool TryWarmStart(const Basis& hint) {
    std::vector<int> basic_cols;
    basic_cols.reserve(m_);
    for (int j = 0; j < num_struct_; ++j) {
      switch (hint.structural[j]) {
        case VarStatus::kBasic:
          basic_cols.push_back(j);
          break;
        case VarStatus::kAtUpper:
          if (hi_[j] < kInf) {
            xval_[j] = hi_[j];
            at_upper_[j] = true;
          } else {
            xval_[j] = lo_[j];
          }
          break;
        case VarStatus::kAtLower:
          xval_[j] = lo_[j];
          break;
      }
    }
    for (int i = 0; i < m_; ++i) {
      if (hint.logical[i] != VarStatus::kBasic) continue;
      const int sc = slack_col_of_row_[i];
      // Equality rows have no slack column; stand in a pinned artificial
      // (bounds [0,0]) whose unit column matches what the row contributes.
      basic_cols.push_back(sc >= 0 ? sc : AddArtificial(i, 1.0, 0, 0));
    }
    if (static_cast<int>(basic_cols.size()) != m_) return false;

    basis_ = std::move(basic_cols);
    basic_row_.assign(total_cols_, -1);
    for (int p = 0; p < m_; ++p) basic_row_[basis_[p]] = p;

    const auto repairs = factor_.Factorize(col_start_, entry_row_, entry_coef_,
                                           basis_, m_, kFactorPivotEps);
    ++stats_.refactorizations;
    for (const auto& rep : repairs) {
      // The dependent column leaves the (repaired) basis at its lower bound;
      // the factorization already substituted e_row, so point the position
      // at a matching pinned artificial.
      const int old_col = basis_[rep.position];
      basic_row_[old_col] = -1;
      at_upper_[old_col] = false;
      xval_[old_col] = lo_[old_col];
      const int ac = AddArtificial(rep.row, 1.0, 0, 0);
      basis_[rep.position] = ac;
      basic_row_.push_back(rep.position);
    }
    ComputeBasicValues();
    return true;
  }

  void SetPhase1Costs() {
    cost_.assign(total_cols_, 0.0);
    for (int j = art_begin_; j < total_cols_; ++j) cost_[j] = 1.0;
  }

  void SetPhase2Costs(const LpProblem& problem) {
    cost_.assign(total_cols_, 0.0);
    for (int j = 0; j < num_struct_; ++j) cost_[j] = problem.obj(j);
  }

  double FeasTol() const {
    return options_.feasibility_tol * (1 + rhs_norm_);
  }

  int CountViolations() const {
    const double tol = FeasTol();
    int count = 0;
    for (int c = 0; c < total_cols_; ++c) {
      if (xval_[c] > hi_[c] + tol || xval_[c] < lo_[c] - tol) ++count;
    }
    return count;
  }

  // Gives every out-of-bounds variable a working box [violated bound, x] and
  // a +-1 surrogate cost pulling it back toward its true range; everything
  // else keeps cost 0 and true bounds. Minimizing the surrogate is then
  // exactly minimizing total bound violation within the boxes.
  void BoxViolators(std::vector<SavedBound>* saved) {
    cost_.assign(total_cols_, 0.0);
    const double tol = FeasTol();
    for (int c = 0; c < total_cols_; ++c) {
      const double x = xval_[c];
      if (x > hi_[c] + tol) {
        saved->push_back({c, lo_[c], hi_[c]});
        cost_[c] = 1.0;
        lo_[c] = hi_[c];
        hi_[c] = x;
        if (basic_row_[c] < 0) at_upper_[c] = true;
      } else if (x < lo_[c] - tol) {
        saved->push_back({c, lo_[c], hi_[c]});
        cost_[c] = -1.0;
        hi_[c] = lo_[c];
        lo_[c] = x;
        if (basic_row_[c] < 0) at_upper_[c] = false;
      }
    }
  }

  void RestoreTrueBounds(const std::vector<SavedBound>& saved) {
    for (const SavedBound& s : saved) {
      lo_[s.col] = s.lo;
      hi_[s.col] = s.hi;
      if (basic_row_[s.col] < 0) {
        // Snap the nonbasic status to the nearer true bound.
        at_upper_[s.col] =
            s.hi < kInf &&
            std::abs(xval_[s.col] - s.hi) <= std::abs(xval_[s.col] - s.lo);
      }
    }
  }

  double CurrentObjective() const {
    double obj = 0;
    for (int j = 0; j < total_cols_; ++j) obj += cost_[j] * xval_[j];
    return obj;
  }

  // y = B^-T c_B via one full BTRAN.
  void RecomputeDuals() {
    cb_.Clear();
    for (int p = 0; p < m_; ++p) {
      const double cb = cost_[basis_[p]];
      if (cb != 0) cb_.Set(p, cb);
    }
    factor_.Btran(&cb_, options_.density_threshold);
    y_.assign(m_, 0.0);
    if (cb_.dense) {
      for (int i = 0; i < m_; ++i) y_[i] = cb_.val[i];
    } else {
      for (int i : cb_.idx) y_[i] = cb_.val[i];
    }
  }

  double ReducedCost(int j) const {
    double d = cost_[j];
    for (int p = col_start_[j]; p < col_start_[j + 1]; ++p) {
      d -= y_[entry_row_[p]] * entry_coef_[p];
    }
    return d;
  }

  // x_B = B^-1 (b - N x_N). Returns the residual ||B x_B - (b - N x_N)||_inf
  // as a cheap instability probe.
  double ComputeBasicValues() {
    std::vector<double>& r = resid_scratch_;
    r = rhs_;
    for (int j = 0; j < total_cols_; ++j) {
      if (basic_row_[j] >= 0 || xval_[j] == 0) continue;
      for (int p = col_start_[j]; p < col_start_[j + 1]; ++p) {
        r[entry_row_[p]] -= entry_coef_[p] * xval_[j];
      }
    }
    rhs_work_.Clear();
    rhs_work_.dense = true;
    for (int i = 0; i < m_; ++i) rhs_work_.val[i] = r[i];
    factor_.Ftran(&rhs_work_, options_.density_threshold);
    for (int p = 0; p < m_; ++p) xval_[basis_[p]] = rhs_work_.val[p];

    double resid = 0;
    std::vector<double> acc(m_, 0.0);
    for (int p = 0; p < m_; ++p) {
      const int c = basis_[p];
      const double x = xval_[c];
      if (x == 0) continue;
      for (int e = col_start_[c]; e < col_start_[c + 1]; ++e) {
        acc[entry_row_[e]] += entry_coef_[e] * x;
      }
    }
    for (int i = 0; i < m_; ++i) {
      resid = std::max(resid, std::abs(acc[i] - r[i]));
    }
    return resid;
  }

  // Factorizes the current basis from scratch, resetting the eta file. A
  // repair here would mean the pivot tolerances let a numerically singular
  // basis through — same invariant the dense engine CHECKs.
  void Refactorize() {
    stats_.max_eta_length =
        std::max(stats_.max_eta_length, factor_.eta_count());
    const auto repairs = factor_.Factorize(col_start_, entry_row_, entry_coef_,
                                           basis_, m_, kFactorPivotEps);
    SLP_INVARIANT(audit::Category::kBasis, repairs.empty(),
                  "refactorization of a pivot-checked basis repaired " +
                      std::to_string(repairs.size()) + " columns");
    ++stats_.refactorizations;
#if SLP_AUDITS_ENABLED
    AuditTableauState();
#endif
  }

  double EnteringDelta(int j, double d) const {
    if (!at_upper_[j] && d < -options_.optimality_tol) return -d;
    if (at_upper_[j] && d > options_.optimality_tol && hi_[j] < kInf) return d;
    return 0;
  }

  bool Eligible(int j) const {
    return basic_row_[j] < 0 && lo_[j] < hi_[j];
  }

  void ExportBasis(Basis* out) const {
#if SLP_AUDITS_ENABLED
    AuditTableauState();
#endif
    out->structural.resize(num_struct_);
    for (int j = 0; j < num_struct_; ++j) {
      out->structural[j] = basic_row_[j] >= 0 ? VarStatus::kBasic
                           : at_upper_[j]     ? VarStatus::kAtUpper
                                              : VarStatus::kAtLower;
    }
    out->logical.assign(m_, VarStatus::kAtLower);
    for (int p = 0; p < m_; ++p) {
      const int c = basis_[p];
      if (c < num_struct_) continue;
      out->logical[entry_row_[col_start_[c]]] = VarStatus::kBasic;
    }
  }

  // Deep self-audit of the tableau (debug builds, factorization/export
  // boundaries): basis/position bijection, nonbasic upper-bound statuses
  // only on boxed columns, bounded eta file, and a B·B^-1 probe — FTRAN
  // of a few basis columns must reproduce unit vectors up to a residual
  // bound (a decayed or mispatched factorization shows up here).
  void AuditTableauState() const {
    constexpr auto kCat = audit::Category::kBasis;
    SLP_AUDIT_CHECK(kCat, static_cast<int>(basis_.size()) == m_,
                    "basis has " + std::to_string(basis_.size()) +
                        " positions for " + std::to_string(m_) + " rows");
    int basic_count = 0;
    for (int c = 0; c < total_cols_; ++c) {
      const int p = basic_row_[c];
      if (p >= 0) {
        ++basic_count;
        SLP_AUDIT_CHECK(kCat, p < m_ && basis_[p] == c,
                        "basic_row/basis bijection broken at column " +
                            std::to_string(c));
      } else {
        SLP_AUDIT_CHECK(kCat, !at_upper_[c] || hi_[c] < kInf,
                        "nonbasic column " + std::to_string(c) +
                            " at upper with infinite bound");
      }
    }
    SLP_AUDIT_CHECK(kCat, basic_count == m_,
                    std::to_string(basic_count) + " basic columns for " +
                        std::to_string(m_) + " rows");
    SLP_AUDIT_CHECK(kCat, factor_.eta_count() <= options_.max_eta,
                    "eta file length " +
                        std::to_string(factor_.eta_count()) +
                        " exceeds max_eta " +
                        std::to_string(options_.max_eta));
    // B·B^-1 unit-vector probe on a few spread positions.
    ScatterVec probe;
    probe.Resize(m_);
    const int samples = std::min(m_, 4);
    for (int k = 0; k < samples; ++k) {
      const int p = static_cast<int>(
          (static_cast<int64_t>(k) * m_) / samples);
      const int c = basis_[p];
      probe.Clear();
      double colnorm = 0;
      for (int e = col_start_[c]; e < col_start_[c + 1]; ++e) {
        probe.Add(entry_row_[e], entry_coef_[e]);
        colnorm = std::max(colnorm, std::abs(entry_coef_[e]));
      }
      factor_.Ftran(&probe, options_.density_threshold);
      const double tol = 1e-6 * (1 + colnorm);
      double err = 0;
      for (int i = 0; i < m_; ++i) {
        const double want = i == p ? 1.0 : 0.0;
        err = std::max(err, std::abs(probe.val[i] - want));
      }
      SLP_AUDIT_CHECK(kCat, err <= tol,
                      "B·B^-1 residual " + std::to_string(err) +
                          " at position " + std::to_string(p));
    }
  }

  // One phase of primal simplex on the current costs; the pivot loop matches
  // the dense engine but runs every linear-algebra step through the LU+eta
  // factorization with sparse right-hand sides.
  SolveStatus Iterate(int max_iters, int* iteration_counter) {
    int since_recompute = 0;
    int since_refactor = 0;
    int stall = 0;
    bool bland = false;
    bool verified = false;  // optimality confirmed with fresh duals
    double last_obj = CurrentObjective();
    int price_cursor = 0;

    while (true) {
      if (*iteration_counter >= max_iters) return SolveStatus::kIterationLimit;

      // ---- Pricing ----
      int q = -1;
      double best_delta = 0;
      if (bland) {
        for (int j = 0; j < total_cols_; ++j) {
          if (!Eligible(j)) continue;
          if (EnteringDelta(j, ReducedCost(j)) > 0) {
            q = j;
            break;
          }
        }
      } else {
        // Small partial-pricing sections: the rotating cursor already gives
        // every column a regular turn, so a narrow window changes the pivot
        // sequence only marginally while making each pricing pass cheap.
        const int window = std::max(200, total_cols_ / 32);
        int scanned = 0;
        int j = price_cursor;
        while (scanned < total_cols_) {
          if (Eligible(j)) {
            const double delta = EnteringDelta(j, ReducedCost(j));
            if (delta > best_delta) {
              best_delta = delta;
              q = j;
            }
          }
          ++scanned;
          ++j;
          if (j >= total_cols_) j = 0;
          if (q >= 0 && scanned >= window) break;
        }
        price_cursor = j;
      }
      if (q < 0) {
        if (verified) return SolveStatus::kOptimal;
        ComputeBasicValues();
        RecomputeDuals();
        verified = true;
        continue;
      }
      verified = false;

      ++(*iteration_counter);

      // ---- FTRAN: w = B^-1 A_q (position space) ----
      w_vec_.Clear();
      for (int p = col_start_[q]; p < col_start_[q + 1]; ++p) {
        w_vec_.Add(entry_row_[p], entry_coef_[p]);
      }
      factor_.Ftran(&w_vec_, options_.density_threshold);
      ftran_density_sum_ +=
          static_cast<double>(w_vec_.nnz()) / std::max(1, m_);
      ++ftran_count_;

      const double d_q = ReducedCost(q);
      const double sigma = at_upper_[q] ? -1.0 : 1.0;

      // ---- Ratio test (over the nonzeros of w) ----
      double theta = (hi_[q] < kInf) ? hi_[q] - lo_[q] : kInf;  // bound flip
      int leave = -1;          // basis *position* of leaving variable
      double leave_pivot = 0;  // w[leave]
      bool leave_at_upper = false;
      auto ratio_visit = [&](int i, double wi) {
        const double delta = sigma * wi;
        if (std::abs(delta) <= options_.pivot_tol) return;
        const int bcol = basis_[i];
        double limit;
        bool hits_upper;
        if (delta > 0) {
          limit = (xval_[bcol] - lo_[bcol]) / delta;
          hits_upper = false;
        } else {
          if (hi_[bcol] >= kInf) return;
          limit = (hi_[bcol] - xval_[bcol]) / (-delta);
          hits_upper = true;
        }
        if (limit < 0) limit = 0;
        const bool better =
            limit < theta - 1e-10 ||
            (limit < theta + 1e-10 && leave >= 0 &&
             (bland ? bcol < basis_[leave]
                    : std::abs(wi) > std::abs(leave_pivot)));
        if (better || (leave < 0 && limit < theta - 1e-10)) {
          theta = std::min(theta, limit);
          leave = i;
          leave_pivot = wi;
          leave_at_upper = hits_upper;
        }
      };
      if (w_vec_.dense) {
        for (int i = 0; i < m_; ++i) {
          if (w_vec_.val[i] != 0) ratio_visit(i, w_vec_.val[i]);
        }
      } else {
        for (int i : w_vec_.idx) {
          if (w_vec_.val[i] != 0) ratio_visit(i, w_vec_.val[i]);
        }
      }

      if (theta >= kInf) return SolveStatus::kUnbounded;

      // ---- Apply the step ----
      if (theta > 0) {
        auto step_visit = [&](int i, double wi) {
          xval_[basis_[i]] -= sigma * theta * wi;
        };
        if (w_vec_.dense) {
          for (int i = 0; i < m_; ++i) {
            if (w_vec_.val[i] != 0) step_visit(i, w_vec_.val[i]);
          }
        } else {
          for (int i : w_vec_.idx) {
            if (w_vec_.val[i] != 0) step_visit(i, w_vec_.val[i]);
          }
        }
      }

      if (leave < 0) {
        // Bound flip: q moves to its opposite bound; basis unchanged.
        at_upper_[q] = !at_upper_[q];
        xval_[q] = at_upper_[q] ? hi_[q] : lo_[q];
      } else {
        const int lcol = basis_[leave];
        xval_[q] = (at_upper_[q] ? hi_[q] : lo_[q]) + sigma * theta;
        xval_[lcol] = leave_at_upper ? hi_[lcol] : lo_[lcol];
        at_upper_[lcol] = leave_at_upper;
        basis_[leave] = q;
        basic_row_[q] = leave;
        basic_row_[lcol] = -1;

        // ---- Update the factorization (append one eta) ----
        factor_.AppendEta(w_vec_, leave);
        stats_.max_eta_length =
            std::max(stats_.max_eta_length, factor_.eta_count());

        // Incremental dual update: y += d_q * (B_new^-T e_leave), the
        // sparse-BTRAN analogue of adding the new Binv row.
        rho_.Clear();
        rho_.Set(leave, 1.0);
        factor_.Btran(&rho_, options_.density_threshold);
        if (rho_.dense) {
          for (int k = 0; k < m_; ++k) y_[k] += d_q * rho_.val[k];
        } else {
          for (int k : rho_.idx) y_[k] += d_q * rho_.val[k];
        }

        ++since_recompute;
        ++since_refactor;
      }

      // ---- Housekeeping ----
      // Refactorize on eta-file length, eta fill relative to the LU, or the
      // (large) hard pivot cadence; recompute state on the usual interval
      // and escalate to a refactorization if the residual probe says the
      // eta chain has gone unstable.
      const bool need_refactor =
          since_refactor > 0 &&
          (factor_.eta_count() >= options_.max_eta ||
           factor_.eta_nnz() >
               options_.eta_fill_factor * factor_.lu_nnz() ||
           since_refactor >= options_.refactor_interval);
      if (need_refactor) {
        Refactorize();
        ComputeBasicValues();
        RecomputeDuals();
        since_refactor = 0;
        since_recompute = 0;
      } else if (since_recompute >= options_.recompute_interval) {
        const double resid = ComputeBasicValues();
        if (resid > 1e-6 * (1 + rhs_norm_) && since_refactor > 0) {
          Refactorize();
          ComputeBasicValues();
          since_refactor = 0;
        }
        RecomputeDuals();
        since_recompute = 0;
      }

      const double obj = CurrentObjective();
      if (obj < last_obj - 1e-12) {
        stall = 0;
        last_obj = obj;
      } else if (++stall > options_.stall_threshold && !bland) {
        bland = true;  // guarantee termination on degenerate instances
        RecomputeDuals();
      }
    }
  }

  // Applies a batch of nonbasic value changes to the basic variables: the
  // accumulated Δ(N·x_N) sits in rhs_work_ (row space); one FTRAN maps it
  // to basis positions and x_B absorbs the negated result.
  void ApplyNonbasicDeltas() {
    factor_.Ftran(&rhs_work_, options_.density_threshold);
    if (rhs_work_.dense) {
      for (int i = 0; i < m_; ++i) {
        if (rhs_work_.val[i] != 0) xval_[basis_[i]] -= rhs_work_.val[i];
      }
    } else {
      for (int i : rhs_work_.idx) {
        if (rhs_work_.val[i] != 0) xval_[basis_[i]] -= rhs_work_.val[i];
      }
    }
  }

  // Makes the current point dual-feasible for the current costs by
  // bound-flipping nonbasic boxed variables whose reduced cost has the
  // wrong sign (rhs edits never break dual feasibility, but objective
  // edits and dual drift after a recompute can). Returns false when an
  // offender has an infinite opposite bound — no flip can fix it and the
  // caller must fall back to the primal path.
  bool RestoreDualFeasibility() {
    const double dtol = options_.optimality_tol;
    rhs_work_.Clear();
    bool flipped = false;
    for (int j = 0; j < total_cols_; ++j) {
      if (basic_row_[j] >= 0 || lo_[j] >= hi_[j]) continue;
      const double d = ReducedCost(j);
      double dx = 0;
      if (!at_upper_[j] && d < -dtol) {
        if (hi_[j] >= kInf) return false;
        dx = hi_[j] - lo_[j];
        at_upper_[j] = true;
        xval_[j] = hi_[j];
      } else if (at_upper_[j] && d > dtol) {
        dx = lo_[j] - hi_[j];
        at_upper_[j] = false;
        xval_[j] = lo_[j];
      } else {
        continue;
      }
      ++stats_.bound_flips;
      flipped = true;
      for (int p = col_start_[j]; p < col_start_[j + 1]; ++p) {
        rhs_work_.Add(entry_row_[p], entry_coef_[p] * dx);
      }
    }
    if (flipped) ApplyNonbasicDeltas();
    return true;
  }

  // Bounded-variable dual simplex pivot loop on the shared LU/eta kernel.
  // Leaving row: largest primal bound violation. Entering: dual ratio test
  // with bound-flipping (a candidate whose box can't absorb the remaining
  // violation flips to its opposite bound and the walk continues) and a
  // Harris-style second pass that breaks near-ties at the breakpoint by
  // pivot magnitude. Returns nullopt whenever the primal fallback should
  // take over: a dual ray (primal infeasible — phase 1 stays the only
  // authority for that verdict), a stall of degenerate steps, or numerical
  // breakdown.
  std::optional<SolveStatus> IterateDual(int max_iters,
                                         int* iteration_counter) {
    struct Cand {
      int col;
      double ratio;
      double alpha;
    };
    std::vector<Cand> cands;
    int since_recompute = 0;
    int since_refactor = 0;
    int stall = 0;
    int bad_pivots = 0;
    bool verified = false;  // optimality confirmed with fresh values/duals

    while (true) {
      if (*iteration_counter >= max_iters) return SolveStatus::kIterationLimit;

      // ---- Leaving row: largest bound violation among basic variables ----
      const double ptol = FeasTol();
      int r = -1;
      double delta = 0;  // signed violation of the leaving variable
      for (int p = 0; p < m_; ++p) {
        const int c = basis_[p];
        double v = 0;
        if (xval_[c] < lo_[c] - ptol) {
          v = xval_[c] - lo_[c];
        } else if (xval_[c] > hi_[c] + ptol) {
          v = xval_[c] - hi_[c];
        }
        if (std::abs(v) > std::abs(delta)) {
          delta = v;
          r = p;
        }
      }
      if (r < 0) {
        // Primal feasible. Like the primal loop, confirm on fresh numbers
        // (and re-check dual feasibility, which drifts with the duals).
        if (verified) return SolveStatus::kOptimal;
        ComputeBasicValues();
        RecomputeDuals();
        if (!RestoreDualFeasibility()) return std::nullopt;
        verified = true;
        continue;
      }
      verified = false;
      const double sign_r = delta > 0 ? 1.0 : -1.0;

      // ---- BTRAN: rho = B^-T e_r (row space) ----
      rho_.Clear();
      rho_.Set(r, 1.0);
      factor_.Btran(&rho_, options_.density_threshold);

      // ---- Dual ratio test candidates: alpha_j = rho · a_j ----
      // A candidate blocks the dual step when its reduced cost would cross
      // zero: at-lower columns with sign_r·alpha > 0, at-upper columns with
      // sign_r·alpha < 0, at ratio d_j / (sign_r·alpha_j) ≥ 0.
      cands.clear();
      for (int j = 0; j < total_cols_; ++j) {
        if (basic_row_[j] >= 0 || lo_[j] >= hi_[j]) continue;
        double alpha = 0;
        for (int p = col_start_[j]; p < col_start_[j + 1]; ++p) {
          alpha += rho_.val[entry_row_[p]] * entry_coef_[p];
        }
        const double abar = sign_r * alpha;
        if (!at_upper_[j] && abar > options_.pivot_tol) {
          const double d = std::max(0.0, ReducedCost(j));
          cands.push_back({j, d / abar, alpha});
        } else if (at_upper_[j] && abar < -options_.pivot_tol) {
          const double d = std::min(0.0, ReducedCost(j));
          cands.push_back({j, d / abar, alpha});
        }
      }
      if (cands.empty()) return std::nullopt;  // dual ray: primal infeasible
      std::sort(cands.begin(), cands.end(),
                [](const Cand& a, const Cand& b) { return a.ratio < b.ratio; });

      // ---- BFRT walk: flip boxed candidates whose box can't absorb the
      // remaining violation; the first that can absorbs it and enters. ----
      double remaining = std::abs(delta);
      size_t pick = cands.size();
      size_t flip_end = 0;
      for (size_t ci = 0; ci < cands.size(); ++ci) {
        const int j = cands[ci].col;
        const double absorb =
            hi_[j] < kInf ? (hi_[j] - lo_[j]) * std::abs(cands[ci].alpha)
                          : kInf;
        if (absorb < remaining) {
          remaining -= absorb;
          flip_end = ci + 1;
        } else {
          pick = ci;
          break;
        }
      }
      // Every box exhausted with violation left over: dual ray again.
      if (pick == cands.size()) return std::nullopt;
      // Harris-style second pass: among near-tied ratios at the breakpoint,
      // enter the column with the largest pivot magnitude. Skipped-over
      // ties keep a reduced-cost violation below the tolerance window.
      const double ratio_limit =
          cands[pick].ratio + 1e-9 * (1 + std::abs(cands[pick].ratio));
      size_t best = pick;
      for (size_t ci = pick + 1; ci < cands.size(); ++ci) {
        if (cands[ci].ratio > ratio_limit) break;
        if (std::abs(cands[ci].alpha) > std::abs(cands[best].alpha)) best = ci;
      }
      const int q = cands[best].col;
      const double alpha_q = cands[best].alpha;
      const double d_q = ReducedCost(q);

      // ---- FTRAN the entering column ----
      w_vec_.Clear();
      for (int p = col_start_[q]; p < col_start_[q + 1]; ++p) {
        w_vec_.Add(entry_row_[p], entry_coef_[p]);
      }
      factor_.Ftran(&w_vec_, options_.density_threshold);
      ftran_density_sum_ +=
          static_cast<double>(w_vec_.nnz()) / std::max(1, m_);
      ++ftran_count_;
      const double pivot = w_vec_.val[r];
      // The FTRAN pivot must agree with the BTRAN alpha; a decayed eta
      // chain shows up here. Refactorize and retry once on fresh numbers.
      if (std::abs(pivot) <= options_.pivot_tol ||
          std::abs(pivot - alpha_q) >
              1e-5 * (1 + std::abs(pivot) + std::abs(alpha_q))) {
        if (++bad_pivots > 2 || since_refactor == 0) return std::nullopt;
        Refactorize();
        ComputeBasicValues();
        RecomputeDuals();
        since_refactor = 0;
        since_recompute = 0;
        continue;
      }
      bad_pivots = 0;

      // ---- Apply the bound flips (batched: one FTRAN for all) ----
      if (flip_end > 0) {
        rhs_work_.Clear();
        for (size_t ci = 0; ci < flip_end; ++ci) {
          const int j = cands[ci].col;
          const double dx = at_upper_[j] ? lo_[j] - hi_[j] : hi_[j] - lo_[j];
          at_upper_[j] = !at_upper_[j];
          xval_[j] = at_upper_[j] ? hi_[j] : lo_[j];
          ++stats_.bound_flips;
          for (int p = col_start_[j]; p < col_start_[j + 1]; ++p) {
            rhs_work_.Add(entry_row_[p], entry_coef_[p] * dx);
          }
        }
        ApplyNonbasicDeltas();
      }

      // ---- Pivot: q enters at position r; the leaving variable snaps to
      // its violated bound. ----
      const int lcol = basis_[r];
      const double bound_r = sign_r > 0 ? hi_[lcol] : lo_[lcol];
      const double theta_p = (xval_[lcol] - bound_r) / pivot;
      auto step_visit = [&](int i, double wi) {
        xval_[basis_[i]] -= theta_p * wi;
      };
      if (w_vec_.dense) {
        for (int i = 0; i < m_; ++i) {
          if (w_vec_.val[i] != 0) step_visit(i, w_vec_.val[i]);
        }
      } else {
        for (int i : w_vec_.idx) {
          if (w_vec_.val[i] != 0) step_visit(i, w_vec_.val[i]);
        }
      }
      xval_[q] = (at_upper_[q] ? hi_[q] : lo_[q]) + theta_p;
      xval_[lcol] = bound_r;
      at_upper_[lcol] = sign_r > 0;
      basis_[r] = q;
      basic_row_[q] = r;
      basic_row_[lcol] = -1;

      factor_.AppendEta(w_vec_, r);
      stats_.max_eta_length =
          std::max(stats_.max_eta_length, factor_.eta_count());

      // ---- Dual update: y += (d_q / alpha_q) · rho, the step that zeroes
      // the entering column's reduced cost. ----
      const double tstep = d_q / alpha_q;
      if (rho_.dense) {
        for (int k = 0; k < m_; ++k) y_[k] += tstep * rho_.val[k];
      } else {
        for (int k : rho_.idx) y_[k] += tstep * rho_.val[k];
      }

      ++(*iteration_counter);
      ++stats_.dual_pivots;
      ++since_recompute;
      ++since_refactor;

      // Degenerate dual steps make no progress; a long run of them means
      // the max-infeasibility rule is cycling — let the primal path (with
      // its Bland safeguard) finish instead.
      if (std::abs(tstep) <= 1e-12) {
        if (++stall > options_.stall_threshold) return std::nullopt;
      } else {
        stall = 0;
      }

      // ---- Housekeeping (same triggers as the primal loop) ----
      const bool need_refactor =
          since_refactor > 0 &&
          (factor_.eta_count() >= options_.max_eta ||
           factor_.eta_nnz() >
               options_.eta_fill_factor * factor_.lu_nnz() ||
           since_refactor >= options_.refactor_interval);
      if (need_refactor) {
        Refactorize();
        ComputeBasicValues();
        RecomputeDuals();
        if (!RestoreDualFeasibility()) return std::nullopt;
        since_refactor = 0;
        since_recompute = 0;
      } else if (since_recompute >= options_.recompute_interval) {
        const double resid = ComputeBasicValues();
        if (resid > 1e-6 * (1 + rhs_norm_) && since_refactor > 0) {
          Refactorize();
          ComputeBasicValues();
          since_refactor = 0;
        }
        RecomputeDuals();
        if (!RestoreDualFeasibility()) return std::nullopt;
        since_recompute = 0;
      }
    }
  }

  const SimplexOptions options_;
  const int m_;  // rows

  // Sparse columns, contiguous across [structural | slack | artificial].
  std::vector<int> col_start_;
  std::vector<int> entry_row_;
  std::vector<double> entry_coef_;
  std::vector<double> lo_, hi_, cost_, xval_;
  std::vector<bool> at_upper_;
  std::vector<double> rhs_;
  double rhs_norm_ = 0;

  int num_struct_ = 0;
  int slack_begin_ = 0;
  int art_begin_ = 0;
  int total_cols_ = 0;
  int num_art_ = 0;
  std::vector<int> slack_col_of_row_;
  bool warm_ok_ = false;

  std::vector<int> basis_;      // basis_[position] = column at that position
  std::vector<int> basic_row_;  // inverse map, -1 when nonbasic
  std::vector<double> y_;       // duals (row space)

  BasisFactorization factor_;
  ScatterVec w_vec_;   // FTRAN of the entering column
  ScatterVec rho_;     // BTRAN unit vector for the dual update
  ScatterVec cb_;      // BTRAN of c_B
  ScatterVec rhs_work_;
  std::vector<double> resid_scratch_;

  SolverStats stats_;
  double ftran_density_sum_ = 0;
  int64_t ftran_count_ = 0;
};

}  // namespace

LpSolution SimplexSolver::Solve(const LpProblem& problem,
                                const Basis* hint) const {
  SLP_DCHECK(problem.num_constraints() > 0);
  SLP_DCHECK(problem.num_vars() > 0);
  WallTimer timer;
  LpSolution solution;
  if (options_.use_dense_engine) {
    DenseTableau tableau(problem, options_);
    solution = tableau.Run(problem);
  } else {
    SparseTableau tableau(problem, options_, hint);
    solution = tableau.Run(problem);
  }
  solution.stats.pivots = solution.iterations;
  solution.stats.solve_seconds = timer.Seconds();
  return solution;
}

LpSolution SimplexSolver::ResolveDual(const LpProblem& problem,
                                      const Basis& hint) const {
  SLP_DCHECK(problem.num_constraints() > 0);
  SLP_DCHECK(problem.num_vars() > 0);
  WallTimer timer;
  if (!options_.use_dense_engine && !hint.empty() &&
      hint.CompatibleWith(problem.num_vars(), problem.num_constraints())) {
    SparseTableau tableau(problem, options_, &hint);
    std::optional<LpSolution> solution = tableau.RunDual(problem);
    if (solution.has_value()) {
      solution->stats.pivots = solution->iterations;
      solution->stats.solve_seconds = timer.Seconds();
      return *std::move(solution);
    }
  }
  // Primal fallback: warm-start from the hint (the dense engine ignores
  // hints and cold-starts). Never a correctness risk, only a slower path.
  LpSolution solution = Solve(problem, &hint);
  solution.stats.dual_fallback = true;
  solution.stats.solve_seconds = timer.Seconds();
  return solution;
}

void AuditBasis(const Basis& basis, const LpProblem& problem) {
  constexpr auto kCat = audit::Category::kBasis;
  const int n = problem.num_vars();
  const int m = problem.num_constraints();
  SLP_AUDIT_CHECK(kCat, static_cast<int>(basis.structural.size()) == n,
                  "basis has " + std::to_string(basis.structural.size()) +
                      " structural statuses for " + std::to_string(n) +
                      " variables");
  SLP_AUDIT_CHECK(kCat, static_cast<int>(basis.logical.size()) == m,
                  "basis has " + std::to_string(basis.logical.size()) +
                      " logical statuses for " + std::to_string(m) +
                      " constraints");
  int basic_count = 0;
  for (int j = 0; j < n && j < static_cast<int>(basis.structural.size());
       ++j) {
    const VarStatus st = basis.structural[j];
    if (st == VarStatus::kBasic) ++basic_count;
    SLP_AUDIT_CHECK(kCat,
                    st != VarStatus::kAtUpper || problem.hi(j) < kInfinity,
                    "variable " + std::to_string(j) +
                        " at upper with infinite upper bound");
  }
  for (const VarStatus st : basis.logical) {
    if (st == VarStatus::kBasic) ++basic_count;
    // ExportBasis's contract: logicals are reported kBasic or kAtLower.
    SLP_AUDIT_CHECK(kCat, st != VarStatus::kAtUpper,
                    "logical variable at upper bound");
  }
  SLP_AUDIT_CHECK(kCat, basic_count == m,
                  std::to_string(basic_count) + " basic variables for " +
                      std::to_string(m) + " constraints");
}

}  // namespace slp::lp
