#include "src/lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/status.h"

namespace slp::lp {

const char* ToString(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal: return "OPTIMAL";
    case SolveStatus::kInfeasible: return "INFEASIBLE";
    case SolveStatus::kUnbounded: return "UNBOUNDED";
    case SolveStatus::kIterationLimit: return "ITERATION_LIMIT";
  }
  return "UNKNOWN";
}

namespace {

// Internal working state for one Solve() call. Columns are laid out as
// [structural | slack | artificial]; every column is stored sparsely.
class Tableau {
 public:
  Tableau(const LpProblem& problem, const SimplexOptions& options)
      : options_(options), m_(problem.num_constraints()) {
    BuildColumns(problem);
    InitBasis(problem);
  }

  LpSolution Run(const LpProblem& problem) {
    LpSolution solution;
    const int max_iters = options_.max_iterations > 0
                              ? options_.max_iterations
                              : std::max(20000, 50 * m_);

    // Phase 1: minimize the sum of artificial variables.
    if (num_art_ > 0) {
      SetPhase1Costs();
      RecomputeDuals();
      const SolveStatus st = Iterate(max_iters, &solution.iterations);
      if (st == SolveStatus::kIterationLimit) {
        solution.status = st;
        return solution;
      }
      SLP_CHECK(st != SolveStatus::kUnbounded);  // phase-1 obj bounded below
      if (CurrentObjective() > options_.feasibility_tol * (1 + rhs_norm_)) {
        solution.status = SolveStatus::kInfeasible;
        return solution;
      }
      // Pin artificials at zero for phase 2 (their values are within the
      // feasibility tolerance of zero at this point).
      for (int j = art_begin_; j < total_cols_; ++j) {
        lo_[j] = 0;
        hi_[j] = 0;
        xval_[j] = 0;
      }
    }

    // Phase 2: the true objective.
    SetPhase2Costs(problem);
    RecomputeDuals();
    const SolveStatus st = Iterate(max_iters, &solution.iterations);
    solution.status = st;
    if (st != SolveStatus::kOptimal) return solution;

    solution.x.assign(xval_.begin(), xval_.begin() + num_struct_);
    solution.objective = 0;
    for (int j = 0; j < num_struct_; ++j) {
      solution.objective += problem.obj(j) * solution.x[j];
    }
    RecomputeDuals();
    solution.duals = y_;
    return solution;
  }

 private:
  static constexpr double kInf = kInfinity;

  void BuildColumns(const LpProblem& problem) {
    num_struct_ = problem.num_vars();
    const LpProblem::Columns cols = problem.BuildColumns();

    col_start_.assign(1, 0);
    for (int j = 0; j < num_struct_; ++j) {
      for (int p = cols.col_start[j]; p < cols.col_start[j + 1]; ++p) {
        entry_row_.push_back(cols.row[p]);
        entry_coef_.push_back(cols.coef[p]);
      }
      col_start_.push_back(static_cast<int>(entry_row_.size()));
      lo_.push_back(problem.lo(j));
      hi_.push_back(problem.hi(j));
    }

    // Slack columns: <= rows get +1 slack in [0, inf); >= rows get -1 slack
    // in [0, inf); = rows get none.
    slack_begin_ = num_struct_;
    slack_col_of_row_.assign(m_, -1);
    for (int i = 0; i < m_; ++i) {
      const Sense s = problem.sense(i);
      if (s == Sense::kEqual) continue;
      const double coef = (s == Sense::kLessEqual) ? 1.0 : -1.0;
      slack_col_of_row_[i] = static_cast<int>(col_start_.size()) - 1;
      entry_row_.push_back(i);
      entry_coef_.push_back(coef);
      col_start_.push_back(static_cast<int>(entry_row_.size()));
      lo_.push_back(0);
      hi_.push_back(kInf);
    }
    art_begin_ = static_cast<int>(col_start_.size()) - 1;

    rhs_.resize(m_);
    rhs_norm_ = 0;
    for (int i = 0; i < m_; ++i) {
      rhs_[i] = problem.rhs(i);
      rhs_norm_ = std::max(rhs_norm_, std::abs(rhs_[i]));
    }
  }

  // Nonbasic structural variables start at their lower bound. Each row is
  // made basic-feasible with its slack when the slack's sign allows it, or
  // with a fresh artificial otherwise.
  void InitBasis(const LpProblem& problem) {
    const int pre_cols = art_begin_;
    xval_.assign(pre_cols, 0.0);
    at_upper_.assign(pre_cols, false);
    for (int j = 0; j < num_struct_; ++j) xval_[j] = lo_[j];

    // Row residuals with all current columns at their values.
    std::vector<double> resid = rhs_;
    for (int j = 0; j < num_struct_; ++j) {
      if (xval_[j] == 0) continue;
      for (int p = col_start_[j]; p < col_start_[j + 1]; ++p) {
        resid[entry_row_[p]] -= entry_coef_[p] * xval_[j];
      }
    }

    basis_.assign(m_, -1);
    std::vector<double> basic_value(m_, 0.0);
    num_art_ = 0;
    for (int i = 0; i < m_; ++i) {
      const Sense s = problem.sense(i);
      const double r = resid[i];
      const int sc = slack_col_of_row_[i];
      bool use_slack = false;
      if (s == Sense::kLessEqual && r >= 0) use_slack = true;
      if (s == Sense::kGreaterEqual && r <= 0) use_slack = true;
      if (use_slack) {
        basis_[i] = sc;
        basic_value[i] = std::abs(r);  // s = r for <=, s = -r for >=
      } else {
        // Artificial with coefficient sign matching the residual so its
        // basic value is |r| >= 0.
        const double coef = (r >= 0) ? 1.0 : -1.0;
        entry_row_.push_back(i);
        entry_coef_.push_back(coef);
        col_start_.push_back(static_cast<int>(entry_row_.size()));
        lo_.push_back(0);
        hi_.push_back(kInf);
        xval_.push_back(0);
        at_upper_.push_back(false);
        const int ac = static_cast<int>(col_start_.size()) - 2 + 1 - 1;
        basis_[i] = ac;
        basic_value[i] = std::abs(r);
        ++num_art_;
      }
    }
    total_cols_ = static_cast<int>(col_start_.size()) - 1;

    basic_row_.assign(total_cols_, -1);
    for (int i = 0; i < m_; ++i) {
      basic_row_[basis_[i]] = i;
      xval_[basis_[i]] = basic_value[i];
    }

    // The initial basis matrix is diagonal with entries +-1 (slacks and
    // artificials are singleton columns).
    binv_.assign(static_cast<size_t>(m_) * m_, 0.0);
    for (int i = 0; i < m_; ++i) {
      const int c = basis_[i];
      const double coef = entry_coef_[col_start_[c]];
      binv_[static_cast<size_t>(i) * m_ + i] = 1.0 / coef;
    }
    cost_.assign(total_cols_, 0.0);
  }

  void SetPhase1Costs() {
    std::fill(cost_.begin(), cost_.end(), 0.0);
    for (int j = art_begin_; j < total_cols_; ++j) cost_[j] = 1.0;
  }

  void SetPhase2Costs(const LpProblem& problem) {
    std::fill(cost_.begin(), cost_.end(), 0.0);
    for (int j = 0; j < num_struct_; ++j) cost_[j] = problem.obj(j);
  }

  double CurrentObjective() const {
    double obj = 0;
    for (int j = 0; j < total_cols_; ++j) obj += cost_[j] * xval_[j];
    return obj;
  }

  // y = c_B^T * Binv.
  void RecomputeDuals() {
    y_.assign(m_, 0.0);
    for (int i = 0; i < m_; ++i) {
      const double cb = cost_[basis_[i]];
      if (cb == 0) continue;
      const double* row = &binv_[static_cast<size_t>(i) * m_];
      for (int k = 0; k < m_; ++k) y_[k] += cb * row[k];
    }
  }

  double ReducedCost(int j) const {
    double d = cost_[j];
    for (int p = col_start_[j]; p < col_start_[j + 1]; ++p) {
      d -= y_[entry_row_[p]] * entry_coef_[p];
    }
    return d;
  }

  // Recomputes x_B = Binv * (b - N x_N) to kill accumulated drift.
  void RecomputeBasicValues() {
    std::vector<double> r = rhs_;
    for (int j = 0; j < total_cols_; ++j) {
      if (basic_row_[j] >= 0 || xval_[j] == 0) continue;
      for (int p = col_start_[j]; p < col_start_[j + 1]; ++p) {
        r[entry_row_[p]] -= entry_coef_[p] * xval_[j];
      }
    }
    for (int i = 0; i < m_; ++i) {
      const double* row = &binv_[static_cast<size_t>(i) * m_];
      double v = 0;
      for (int k = 0; k < m_; ++k) v += row[k] * r[k];
      xval_[basis_[i]] = v;
    }
  }

  // Rebuilds binv_ from the basis columns by Gauss-Jordan elimination with
  // partial pivoting. CHECK-fails on a singular basis (cannot happen if the
  // pivot steps kept |pivot| above tolerance).
  void Refactorize() {
    std::vector<double> mat(static_cast<size_t>(m_) * m_, 0.0);
    for (int i = 0; i < m_; ++i) {
      const int c = basis_[i];
      for (int p = col_start_[c]; p < col_start_[c + 1]; ++p) {
        mat[static_cast<size_t>(entry_row_[p]) * m_ + i] = entry_coef_[p];
      }
    }
    std::vector<double>& inv = binv_;
    std::fill(inv.begin(), inv.end(), 0.0);
    for (int i = 0; i < m_; ++i) inv[static_cast<size_t>(i) * m_ + i] = 1.0;
    // Note: binv_ rows correspond to basis positions; we invert `mat` whose
    // column i is the basis column at position i, producing mat^{-1} laid
    // out so that row i of inv maps rhs-space to basis position i.
    for (int col = 0; col < m_; ++col) {
      int piv = -1;
      double best = 0;
      for (int r = col; r < m_; ++r) {
        const double v = std::abs(mat[static_cast<size_t>(r) * m_ + col]);
        if (v > best) {
          best = v;
          piv = r;
        }
      }
      SLP_CHECK(piv >= 0 && best > 1e-12);
      if (piv != col) {
        for (int k = 0; k < m_; ++k) {
          std::swap(mat[static_cast<size_t>(piv) * m_ + k],
                    mat[static_cast<size_t>(col) * m_ + k]);
          std::swap(inv[static_cast<size_t>(piv) * m_ + k],
                    inv[static_cast<size_t>(col) * m_ + k]);
        }
      }
      const double p = mat[static_cast<size_t>(col) * m_ + col];
      for (int k = 0; k < m_; ++k) {
        mat[static_cast<size_t>(col) * m_ + k] /= p;
        inv[static_cast<size_t>(col) * m_ + k] /= p;
      }
      for (int r = 0; r < m_; ++r) {
        if (r == col) continue;
        const double f = mat[static_cast<size_t>(r) * m_ + col];
        if (f == 0) continue;
        for (int k = 0; k < m_; ++k) {
          mat[static_cast<size_t>(r) * m_ + k] -=
              f * mat[static_cast<size_t>(col) * m_ + k];
          inv[static_cast<size_t>(r) * m_ + k] -=
              f * inv[static_cast<size_t>(col) * m_ + k];
        }
      }
    }
    // `inv` now satisfies inv * mat = I where mat's column i is basis col at
    // position i; i.e., row i of inv extracts basis position i. But our
    // pivot-update convention stores Binv with row i for basis position i as
    // well, applied to original row space: mat[row][pos]. The Gauss-Jordan
    // above inverted mat as written, giving inv = mat^{-1} with
    // inv[pos][row] — exactly the layout binv_ uses.
  }

  double EnteringDelta(int j, double d) const {
    // Positive improvement magnitude for an eligible nonbasic column.
    if (!at_upper_[j] && d < -options_.optimality_tol) return -d;
    if (at_upper_[j] && d > options_.optimality_tol && hi_[j] < kInf) return d;
    return 0;
  }

  bool Eligible(int j) const {
    return basic_row_[j] < 0 && lo_[j] < hi_[j];
  }

  // One phase of primal simplex on the current costs. Returns kOptimal when
  // no eligible entering column remains.
  SolveStatus Iterate(int max_iters, int* iteration_counter) {
    int since_recompute = 0;
    int since_refactor = 0;
    int stall = 0;
    bool bland = false;
    bool verified = false;  // optimality confirmed with fresh duals
    double last_obj = CurrentObjective();
    int price_cursor = 0;

    while (true) {
      if (*iteration_counter >= max_iters) return SolveStatus::kIterationLimit;

      // ---- Pricing ----
      int q = -1;
      double best_delta = 0;
      if (bland) {
        for (int j = 0; j < total_cols_; ++j) {
          if (!Eligible(j)) continue;
          if (EnteringDelta(j, ReducedCost(j)) > 0) {
            q = j;
            break;
          }
        }
      } else {
        const int window = std::max(200, total_cols_ / 8);
        int scanned = 0;
        int j = price_cursor;
        while (scanned < total_cols_) {
          if (Eligible(j)) {
            const double delta = EnteringDelta(j, ReducedCost(j));
            if (delta > best_delta) {
              best_delta = delta;
              q = j;
            }
          }
          ++scanned;
          ++j;
          if (j >= total_cols_) j = 0;
          if (q >= 0 && scanned >= window) break;
        }
        price_cursor = j;
      }
      if (q < 0) {
        // The incremental duals drift; confirm optimality with a fresh
        // recompute before declaring victory.
        if (verified) return SolveStatus::kOptimal;
        RecomputeBasicValues();
        RecomputeDuals();
        verified = true;
        continue;
      }
      verified = false;

      ++(*iteration_counter);

      // ---- FTRAN: w = Binv * A_q ----
      w_.assign(m_, 0.0);
      for (int p = col_start_[q]; p < col_start_[q + 1]; ++p) {
        const int row = entry_row_[p];
        const double coef = entry_coef_[p];
        for (int i = 0; i < m_; ++i) {
          w_[i] += binv_[static_cast<size_t>(i) * m_ + row] * coef;
        }
      }

      const double d_q = ReducedCost(q);
      const double sigma = at_upper_[q] ? -1.0 : 1.0;

      // ---- Ratio test ----
      // Entering moves by theta >= 0 in direction sigma; basic i changes by
      // -sigma * w_i * theta.
      double theta = (hi_[q] < kInf) ? hi_[q] - lo_[q] : kInf;  // bound flip
      int leave = -1;          // row index of leaving variable
      double leave_pivot = 0;  // w_[leave]
      bool leave_at_upper = false;
      for (int i = 0; i < m_; ++i) {
        const double delta = sigma * w_[i];
        if (std::abs(delta) <= options_.pivot_tol) continue;
        const int bcol = basis_[i];
        double limit;
        bool hits_upper;
        if (delta > 0) {
          limit = (xval_[bcol] - lo_[bcol]) / delta;
          hits_upper = false;
        } else {
          if (hi_[bcol] >= kInf) continue;
          limit = (hi_[bcol] - xval_[bcol]) / (-delta);
          hits_upper = true;
        }
        if (limit < 0) limit = 0;
        // Prefer strictly smaller limits; among near-ties take the larger
        // pivot magnitude for stability (or the smaller index under Bland).
        const bool better =
            limit < theta - 1e-10 ||
            (limit < theta + 1e-10 && leave >= 0 &&
             (bland ? basis_[i] < basis_[leave]
                    : std::abs(w_[i]) > std::abs(leave_pivot)));
        if (better || (leave < 0 && limit < theta - 1e-10)) {
          theta = std::min(theta, limit);
          leave = i;
          leave_pivot = w_[i];
          leave_at_upper = hits_upper;
        }
      }

      if (theta >= kInf) return SolveStatus::kUnbounded;

      // ---- Apply the step ----
      if (theta > 0) {
        for (int i = 0; i < m_; ++i) {
          if (w_[i] != 0) xval_[basis_[i]] -= sigma * theta * w_[i];
        }
      }

      if (leave < 0) {
        // Bound flip: q moves to its opposite bound; basis unchanged.
        at_upper_[q] = !at_upper_[q];
        xval_[q] = at_upper_[q] ? hi_[q] : lo_[q];
      } else {
        const int lcol = basis_[leave];
        xval_[q] = (at_upper_[q] ? hi_[q] : lo_[q]) + sigma * theta;
        // Snap the leaving variable onto the bound it reached.
        xval_[lcol] = leave_at_upper ? hi_[lcol] : lo_[lcol];
        at_upper_[lcol] = leave_at_upper;
        basis_[leave] = q;
        basic_row_[q] = leave;
        basic_row_[lcol] = -1;

        // ---- Update Binv (product form) ----
        double* prow = &binv_[static_cast<size_t>(leave) * m_];
        const double inv_pivot = 1.0 / leave_pivot;
        for (int k = 0; k < m_; ++k) prow[k] *= inv_pivot;
        for (int i = 0; i < m_; ++i) {
          if (i == leave) continue;
          const double f = w_[i];
          if (f == 0) continue;
          double* irow = &binv_[static_cast<size_t>(i) * m_];
          for (int k = 0; k < m_; ++k) irow[k] -= f * prow[k];
        }
        // Incremental dual update: y += d_q * (new row `leave` of Binv).
        for (int k = 0; k < m_; ++k) y_[k] += d_q * prow[k];

        ++since_recompute;
        ++since_refactor;
      }

      // ---- Housekeeping ----
      if (since_refactor >= options_.refactor_interval) {
        Refactorize();
        RecomputeBasicValues();
        RecomputeDuals();
        since_refactor = 0;
        since_recompute = 0;
      } else if (since_recompute >= options_.recompute_interval) {
        RecomputeBasicValues();
        RecomputeDuals();
        since_recompute = 0;
      }

      const double obj = CurrentObjective();
      if (obj < last_obj - 1e-12) {
        stall = 0;
        last_obj = obj;
      } else if (++stall > options_.stall_threshold && !bland) {
        bland = true;  // guarantee termination on degenerate instances
        RecomputeDuals();
      }
    }
  }

  const SimplexOptions options_;
  const int m_;  // rows

  // Sparse columns, contiguous across [structural | slack | artificial].
  std::vector<int> col_start_;
  std::vector<int> entry_row_;
  std::vector<double> entry_coef_;
  std::vector<double> lo_, hi_, cost_, xval_;
  std::vector<bool> at_upper_;
  std::vector<double> rhs_;
  double rhs_norm_ = 0;

  int num_struct_ = 0;
  int slack_begin_ = 0;
  int art_begin_ = 0;
  int total_cols_ = 0;
  int num_art_ = 0;
  std::vector<int> slack_col_of_row_;

  std::vector<int> basis_;      // basis_[row] = column basic in that row
  std::vector<int> basic_row_;  // inverse map, -1 when nonbasic
  std::vector<double> binv_;    // dense m x m, row-major
  std::vector<double> y_;       // duals
  std::vector<double> w_;       // FTRAN scratch
};

}  // namespace

LpSolution SimplexSolver::Solve(const LpProblem& problem) const {
  SLP_CHECK(problem.num_constraints() > 0);
  SLP_CHECK(problem.num_vars() > 0);
  Tableau tableau(problem, options_);
  return tableau.Run(problem);
}

}  // namespace slp::lp
