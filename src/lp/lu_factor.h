// Sparse LU factorization of a simplex basis with product-form eta updates.
//
// BasisFactorization maintains B = L·U (left-looking elimination with
// partial pivoting over sparse columns) plus an eta file of rank-one pivot
// updates appended between refactorizations. FTRAN / BTRAN solve against
// L, U and the eta file with sparsity-exploiting kernels:
//
//   FTRAN  w = B^-1 a :  L-solve (scatter, skips zero positions), U-solve
//                        (gather over U's rows), then etas oldest→newest;
//   BTRAN  y = B^-T c :  eta-transposes newest→oldest, U^T-solve (scatter,
//                        skips zero positions), L^T-solve (gather).
//
// Right-hand sides travel in a ScatterVec — a dense value array plus an
// explicit nonzero index list — and flip to a plain dense scan once fill
// exceeds a density threshold, so sparse problems pay O(nnz) per solve and
// dense ones never pay index-tracking overhead on top of the O(m) scan.
//
// Cost model: a refactorization is O(m²) pivot-candidate checks plus
// O(fill) arithmetic (the bases SLP produces are a few nonzeros per column,
// so fill is tiny); each solve is O(m + nnz(L)+nnz(U)+nnz(etas)). The
// legacy dense engine paid O(m²) *arithmetic* per pivot.

#ifndef SLP_LP_LU_FACTOR_H_
#define SLP_LP_LU_FACTOR_H_

#include <cstdint>
#include <vector>

namespace slp::lp {

// Dense-storage work vector with an explicit nonzero pattern. `dense`
// signals that the pattern is not tracked and consumers must scan all of
// `val` (the dense fallback).
class ScatterVec {
 public:
  void Resize(int n) {
    n_ = n;
    val.assign(n, 0.0);
    mark_.assign(n, 0);
    idx.clear();
    dense = false;
  }

  // Zeroes the touched entries (O(nnz), or O(n) in dense mode).
  void Clear() {
    if (dense) {
      std::fill(val.begin(), val.end(), 0.0);
      std::fill(mark_.begin(), mark_.end(), 0);
    } else {
      for (int i : idx) {
        val[i] = 0.0;
        mark_[i] = 0;
      }
    }
    idx.clear();
    dense = false;
  }

  void Add(int i, double v) {
    val[i] += v;
    Track(i);
  }

  void Set(int i, double v) {
    val[i] = v;
    Track(i);
  }

  void Track(int i) {
    if (!dense && !mark_[i]) {
      mark_[i] = 1;
      idx.push_back(i);
    }
  }

  // Rescans `val`, rebuilding the index list; switches to dense mode when
  // more than `density_threshold * n` entries are nonzero.
  void RebuildIndex(double density_threshold);

  int nnz() const;
  int size() const { return n_; }

  std::vector<double> val;
  std::vector<int> idx;  // valid only when !dense (may contain exact zeros)
  bool dense = false;

 private:
  int n_ = 0;
  std::vector<uint8_t> mark_;
};

class BasisFactorization {
 public:
  // A basis position whose column was (numerically) dependent and was
  // replaced by the unit column of `row` during factorization.
  struct Repair {
    int position;
    int row;
  };

  // Factorizes the m×m basis whose position-p column is column
  // `basis_cols[p]` of the CSC matrix (col_start, row, coef). Positions
  // with no acceptable pivot are replaced internally by unit columns of the
  // leftover rows and reported; the returned factorization is then of that
  // *repaired* basis, and the caller must re-point its bookkeeping (e.g. at
  // the row's slack/artificial column) to match. Resets the eta file.
  std::vector<Repair> Factorize(const std::vector<int>& col_start,
                                const std::vector<int>& row,
                                const std::vector<double>& coef,
                                const std::vector<int>& basis_cols, int m,
                                double pivot_eps);

  // v := B^-1 v. Input indexed by constraint row, output by basis position.
  void Ftran(ScatterVec* v, double density_threshold) const;

  // v := B^-T v. Input indexed by basis position, output by constraint row.
  void Btran(ScatterVec* v, double density_threshold) const;

  // Appends the product-form eta for a pivot that replaced the column at
  // basis position p, where w = B^-1 a_entering (FTRAN output, position
  // space). w[p] must be the (nonzero) pivot element.
  void AppendEta(const ScatterVec& w, int p);

  int eta_count() const { return static_cast<int>(eta_pivot_pos_.size()); }
  int64_t eta_nnz() const { return static_cast<int64_t>(eta_pos_.size()); }
  int64_t lu_nnz() const {
    return static_cast<int64_t>(l_val_.size() + u_val_.size()) + m_;
  }

 private:
  int m_ = 0;

  // L (unit lower) by columns and U by rows, both in elimination-step
  // space: l column k holds steps > k, u row k holds steps > k, and the U
  // diagonal is separate.
  std::vector<int> l_start_, l_idx_;
  std::vector<double> l_val_;
  std::vector<int> u_start_, u_idx_;
  std::vector<double> u_val_;
  std::vector<double> u_diag_;

  // Permutations: elimination step <-> constraint row / basis position.
  std::vector<int> row_of_step_, step_of_row_;
  std::vector<int> pos_of_step_, step_of_pos_;

  // Eta file (basis-position space), flat storage.
  std::vector<int> eta_start_{0};
  std::vector<int> eta_pos_;
  std::vector<double> eta_val_;
  std::vector<int> eta_pivot_pos_;
  std::vector<double> eta_pivot_val_;

  mutable ScatterVec work_;  // permuted-space scratch for the solves
};

}  // namespace slp::lp

#endif  // SLP_LP_LU_FACTOR_H_
