// Sparse linear-program model.
//
// The paper solves its filter-assignment relaxation with CPLEX 10; this
// repository provides the solver substrate from scratch. LpProblem is the
// model container (variables with bounds, linear constraints, minimization
// objective); src/lp/simplex.h solves it.

#ifndef SLP_LP_LP_PROBLEM_H_
#define SLP_LP_LP_PROBLEM_H_

#include <limits>
#include <utility>
#include <vector>

namespace slp::lp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class Sense {
  kLessEqual,
  kGreaterEqual,
  kEqual,
};

// A minimization LP:
//   min  c^T x
//   s.t. A x {<=,>=,=} b,   lo <= x <= hi.
//
// Build with AddVariable / AddConstraint / AddEntry (entries may arrive in
// any order; duplicates for the same (row, col) are summed). The model is
// append-only.
class LpProblem {
 public:
  // Adds a variable with objective coefficient `obj` and bounds [lo, hi]
  // (hi may be kInfinity). Returns its column index.
  int AddVariable(double obj, double lo, double hi);

  // Adds a constraint with the given sense and right-hand side. Returns its
  // row index.
  int AddConstraint(Sense sense, double rhs);

  // One row of a batch append: sense, rhs, and the row's entries as
  // (column, coefficient) pairs over existing variables.
  struct RowSpec {
    Sense sense;
    double rhs;
    std::vector<std::pair<int, double>> entries;
  };

  // Appends `rows` fresh constraints (e.g., (C3) rows for a fresh Sb
  // sample) and returns the index of the first one. A Basis from a solve of
  // the pre-append problem stays usable after Basis::ExtendForNewRows: the
  // new rows' logical variables enter basic with zero duals, which leaves
  // the old reduced costs untouched — so SimplexSolver::ResolveDual can
  // continue dually instead of cold-starting.
  int AddRows(const std::vector<RowSpec>& rows);

  // Adds coefficient `coef` for variable `col` in constraint `row`.
  void AddEntry(int row, int col, double coef);

  int num_vars() const { return static_cast<int>(obj_.size()); }
  int num_constraints() const { return static_cast<int>(rhs_.size()); }
  int num_entries() const { return static_cast<int>(entry_row_.size()); }

  // In-place edits that preserve the problem's shape (no rows/columns
  // added or removed), so a Basis from a previous solve stays compatible
  // and re-solves can warm-start. Used by the FilterAssign β-escalation
  // ladder to retune its (C3) load rows without rebuilding the model.
  void SetRhs(int row, double rhs) { rhs_[row] = rhs; }
  void SetObj(int col, double obj) { obj_[col] = obj; }

  double obj(int col) const { return obj_[col]; }
  double lo(int col) const { return lo_[col]; }
  double hi(int col) const { return hi_[col]; }
  Sense sense(int row) const { return sense_[row]; }
  double rhs(int row) const { return rhs_[row]; }

  // Column-compressed view of A built on demand: for column j, the entries
  // are rows[col_start[j] .. col_start[j+1]) with matching coefficients.
  // Duplicate (row, col) entries are merged by summation.
  struct Columns {
    std::vector<int> col_start;  // size num_vars()+1
    std::vector<int> row;
    std::vector<double> coef;
  };
  Columns BuildColumns() const;

  // Evaluates the left-hand side of every constraint at x.
  std::vector<double> EvaluateRows(const std::vector<double>& x) const;

 private:
  std::vector<double> obj_;
  std::vector<double> lo_;
  std::vector<double> hi_;
  std::vector<Sense> sense_;
  std::vector<double> rhs_;
  // Triplets, in insertion order.
  std::vector<int> entry_row_;
  std::vector<int> entry_col_;
  std::vector<double> entry_coef_;
};

}  // namespace slp::lp

#endif  // SLP_LP_LP_PROBLEM_H_
