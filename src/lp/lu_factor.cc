#include "src/lp/lu_factor.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

#include "src/common/invariant.h"
#include "src/common/status.h"

namespace slp::lp {

void ScatterVec::RebuildIndex(double density_threshold) {
  idx.clear();
  std::fill(mark_.begin(), mark_.end(), 0);
  dense = false;
  const int cap = static_cast<int>(density_threshold * n_);
  for (int i = 0; i < n_; ++i) {
    if (val[i] == 0.0) continue;
    idx.push_back(i);
    mark_[i] = 1;
    if (static_cast<int>(idx.size()) > cap) {
      // Too full to be worth tracking: flip to dense-scan mode.
      for (int j : idx) mark_[j] = 0;
      idx.clear();
      dense = true;
      return;
    }
  }
}

int ScatterVec::nnz() const {
  if (!dense) return static_cast<int>(idx.size());
  int count = 0;
  for (double v : val) count += (v != 0.0);
  return count;
}

std::vector<BasisFactorization::Repair> BasisFactorization::Factorize(
    const std::vector<int>& col_start, const std::vector<int>& row,
    const std::vector<double>& coef, const std::vector<int>& basis_cols,
    int m, double pivot_eps) {
  m_ = m;
  l_start_.assign(1, 0);
  l_idx_.clear();
  l_val_.clear();
  u_diag_.clear();
  row_of_step_.assign(m, -1);
  step_of_row_.assign(m, -1);
  pos_of_step_.assign(m, -1);
  step_of_pos_.assign(m, -1);
  eta_start_.assign(1, 0);
  eta_pos_.clear();
  eta_val_.clear();
  eta_pivot_pos_.clear();
  eta_pivot_val_.clear();

  // Cheap fill-reducing heuristic: eliminate thin columns first (slack and
  // near-singleton columns pin their rows before denser structural columns
  // arrive). Stable, hence deterministic.
  std::vector<int> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const int na = col_start[basis_cols[a] + 1] - col_start[basis_cols[a]];
    const int nb = col_start[basis_cols[b] + 1] - col_start[basis_cols[b]];
    return na < nb;
  });

  // U built by columns during elimination (step-indexed entries), then
  // transposed to row storage for the solves.
  std::vector<int> ucol_start(1, 0);
  std::vector<int> ucol_idx;
  std::vector<double> ucol_val;

  // L entries are recorded with original row indices and remapped to
  // elimination steps once every row has a step.
  std::vector<double> work(m, 0.0);
  std::vector<int> touched;
  std::vector<uint8_t> in_touched(m, 0);
  std::vector<uint8_t> pivoted(m, 0);
  std::vector<Repair> repairs;
  std::vector<int> deficient_positions;
  int step = 0;

  auto touch = [&](int r) {
    if (!in_touched[r]) {
      in_touched[r] = 1;
      touched.push_back(r);
    }
  };
  auto clear_work = [&]() {
    for (int r : touched) {
      work[r] = 0.0;
      in_touched[r] = 0;
    }
    touched.clear();
  };

  // Min-heap of pending elimination steps for the left-looking update, so a
  // column costs O(reach · log) instead of scanning all earlier steps.
  // Applying L_k only reaches rows pivoted *after* step k, so pops are
  // monotonically increasing — ascending step order, fully deterministic.
  std::vector<int> heap;
  std::vector<uint8_t> in_heap(m, 0);
  const auto step_greater = std::greater<int>();
  auto push_step = [&](int k) {
    if (!in_heap[k]) {
      in_heap[k] = 1;
      heap.push_back(k);
      std::push_heap(heap.begin(), heap.end(), step_greater);
    }
  };

  std::vector<int> u_tmp_idx;
  std::vector<double> u_tmp_val;
  for (int pos : order) {
    const int c = basis_cols[pos];
    for (int p = col_start[c]; p < col_start[c + 1]; ++p) {
      const int r = row[p];
      work[r] += coef[p];
      touch(r);
      if (pivoted[r]) push_step(step_of_row_[r]);
    }
    u_tmp_idx.clear();
    u_tmp_val.clear();
    // Left-looking update: fold in the reachable earlier pivots in step
    // order (equivalent to scanning k = 0..step-1, skipping zero rows).
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), step_greater);
      const int k = heap.back();
      heap.pop_back();
      in_heap[k] = 0;
      const int pr = row_of_step_[k];
      const double ukv = work[pr];
      if (ukv == 0.0) continue;  // exact cancellation
      u_tmp_idx.push_back(k);
      u_tmp_val.push_back(ukv);
      work[pr] = 0.0;  // consumed into U; no later column writes this row
      for (int p = l_start_[k]; p < l_start_[k + 1]; ++p) {
        const int r = l_idx_[p];
        work[r] -= l_val_[p] * ukv;
        touch(r);
        if (pivoted[r]) push_step(step_of_row_[r]);
      }
    }
    // Partial pivoting over the not-yet-pivoted rows.
    int pivot_row = -1;
    double best = pivot_eps;
    for (int r : touched) {
      if (pivoted[r]) continue;
      const double v = std::abs(work[r]);
      if (v > best) {
        best = v;
        pivot_row = r;
      }
    }
    if (pivot_row < 0) {
      // Dependent column: defer; a unit column fills this position below.
      deficient_positions.push_back(pos);
      clear_work();
      continue;
    }
    const double pv = work[pivot_row];
    for (int r : touched) {
      if (pivoted[r] || r == pivot_row || work[r] == 0.0) continue;
      l_idx_.push_back(r);
      l_val_.push_back(work[r] / pv);
    }
    l_start_.push_back(static_cast<int>(l_idx_.size()));
    ucol_idx.insert(ucol_idx.end(), u_tmp_idx.begin(), u_tmp_idx.end());
    ucol_val.insert(ucol_val.end(), u_tmp_val.begin(), u_tmp_val.end());
    ucol_start.push_back(static_cast<int>(ucol_idx.size()));
    u_diag_.push_back(pv);
    pivoted[pivot_row] = 1;
    row_of_step_[step] = pivot_row;
    step_of_row_[pivot_row] = step;
    pos_of_step_[step] = pos;
    step_of_pos_[pos] = step;
    ++step;
    clear_work();
  }

  // Pair each deficient position with a leftover row; its unit column e_r
  // factorizes trivially (no earlier L column touches an unpivoted row that
  // only e_r reaches), so the tail steps are diag-1 with empty L/U parts.
  if (!deficient_positions.empty()) {
    std::vector<int> free_rows;
    for (int r = 0; r < m; ++r) {
      if (!pivoted[r]) free_rows.push_back(r);
    }
    SLP_DCHECK(free_rows.size() == deficient_positions.size());
    for (size_t i = 0; i < deficient_positions.size(); ++i) {
      const int pos = deficient_positions[i];
      const int r = free_rows[i];
      repairs.push_back({pos, r});
      l_start_.push_back(static_cast<int>(l_idx_.size()));
      ucol_start.push_back(static_cast<int>(ucol_idx.size()));
      u_diag_.push_back(1.0);
      pivoted[r] = 1;
      row_of_step_[step] = r;
      step_of_row_[r] = step;
      pos_of_step_[step] = pos;
      step_of_pos_[pos] = step;
      ++step;
    }
  }
  SLP_DCHECK(step == m);

  // Remap L's row indices to elimination steps (all strictly below their
  // column's step, since L rows were unpivoted when recorded).
  for (int& r : l_idx_) r = step_of_row_[r];

  // Transpose U from column storage (entries step < column step) to row
  // storage (row k holds steps > k) by counting sort.
  u_start_.assign(m + 1, 0);
  for (int k : ucol_idx) ++u_start_[k + 1];
  for (int k = 0; k < m; ++k) u_start_[k + 1] += u_start_[k];
  u_idx_.resize(ucol_idx.size());
  u_val_.resize(ucol_val.size());
  std::vector<int> cursor(u_start_.begin(), u_start_.end() - 1);
  for (int j = 0; j < m; ++j) {
    for (int p = ucol_start[j]; p < ucol_start[j + 1]; ++p) {
      const int k = ucol_idx[p];
      const int out = cursor[k]++;
      u_idx_[out] = j;
      u_val_[out] = ucol_val[p];
    }
  }

  work_.Resize(m);
  return repairs;
}

void BasisFactorization::Ftran(ScatterVec* v, double density_threshold) const {
  ScatterVec& t = work_;
  t.Clear();
  // Row space -> elimination-step space.
  if (v->dense) {
    t.dense = true;
    for (int r = 0; r < m_; ++r) t.val[step_of_row_[r]] = v->val[r];
  } else {
    for (int r : v->idx) {
      if (v->val[r] != 0.0) t.Set(step_of_row_[r], v->val[r]);
    }
    if (static_cast<int>(t.idx.size()) > density_threshold * m_) {
      t.RebuildIndex(density_threshold);
    }
  }
  // L-solve (scatter): positions fill strictly forward, so one ascending
  // pass that skips zero entries visits exactly the reachable set.
  if (t.dense) {
    for (int k = 0; k < m_; ++k) {
      const double x = t.val[k];
      if (x == 0.0) continue;
      for (int p = l_start_[k]; p < l_start_[k + 1]; ++p) {
        t.val[l_idx_[p]] -= l_val_[p] * x;
      }
    }
  } else {
    // The index list is unordered; the ascending scan still only *applies*
    // columns at nonzero positions — the O(m) walk is branch-only.
    for (int k = 0; k < m_; ++k) {
      const double x = t.val[k];
      if (x == 0.0) continue;
      for (int p = l_start_[k]; p < l_start_[k + 1]; ++p) {
        t.Add(l_idx_[p], -l_val_[p] * x);
      }
    }
  }
  // U-solve (gather over U's rows, descending). Writes every position, so
  // the scratch is dense from here on (and must be cleared as such).
  for (int k = m_ - 1; k >= 0; --k) {
    double s = t.val[k];
    for (int p = u_start_[k]; p < u_start_[k + 1]; ++p) {
      s -= u_val_[p] * t.val[u_idx_[p]];
    }
    t.val[k] = s / u_diag_[k];
  }
  t.dense = true;
  // Step space -> basis-position space.
  v->Clear();
  v->dense = true;
  for (int k = 0; k < m_; ++k) v->val[pos_of_step_[k]] = t.val[k];
  v->RebuildIndex(density_threshold);
  // Eta file, oldest -> newest.
  for (int e = 0; e < eta_count(); ++e) {
    const int p = eta_pivot_pos_[e];
    const double xp = v->val[p];
    if (xp == 0.0) continue;
    const double step_val = xp / eta_pivot_val_[e];
    for (int q = eta_start_[e]; q < eta_start_[e + 1]; ++q) {
      if (v->dense) {
        v->val[eta_pos_[q]] -= eta_val_[q] * step_val;
      } else {
        v->Add(eta_pos_[q], -eta_val_[q] * step_val);
      }
    }
    v->val[p] = step_val;
  }
}

void BasisFactorization::Btran(ScatterVec* v, double density_threshold) const {
  // Eta transposed-inverses, newest -> oldest (each edits one position).
  for (int e = eta_count() - 1; e >= 0; --e) {
    const int p = eta_pivot_pos_[e];
    double s = v->val[p];
    for (int q = eta_start_[e]; q < eta_start_[e + 1]; ++q) {
      s -= eta_val_[q] * v->val[eta_pos_[q]];
    }
    const double nv = s / eta_pivot_val_[e];
    if (v->dense) {
      v->val[p] = nv;
    } else {
      v->Set(p, nv);
    }
  }
  ScatterVec& t = work_;
  t.Clear();
  // Basis-position space -> elimination-step space.
  if (v->dense) {
    t.dense = true;
    for (int pos = 0; pos < m_; ++pos) t.val[step_of_pos_[pos]] = v->val[pos];
  } else {
    for (int pos : v->idx) {
      if (v->val[pos] != 0.0) t.Set(step_of_pos_[pos], v->val[pos]);
    }
    if (static_cast<int>(t.idx.size()) > density_threshold * m_) {
      t.RebuildIndex(density_threshold);
    }
  }
  // U^T-solve (scatter via U's rows, ascending, skips zero positions).
  if (t.dense) {
    for (int k = 0; k < m_; ++k) {
      const double z = t.val[k] / u_diag_[k];
      t.val[k] = z;
      if (z == 0.0) continue;
      for (int p = u_start_[k]; p < u_start_[k + 1]; ++p) {
        t.val[u_idx_[p]] -= u_val_[p] * z;
      }
    }
  } else {
    for (int k = 0; k < m_; ++k) {
      if (t.val[k] == 0.0) continue;
      const double z = t.val[k] / u_diag_[k];
      t.val[k] = z;
      for (int p = u_start_[k]; p < u_start_[k + 1]; ++p) {
        t.Add(u_idx_[p], -u_val_[p] * z);
      }
    }
  }
  // L^T-solve (gather over L's columns, descending). Writes every position,
  // so the scratch is dense from here on (and must be cleared as such).
  for (int k = m_ - 1; k >= 0; --k) {
    double s = t.val[k];
    for (int p = l_start_[k]; p < l_start_[k + 1]; ++p) {
      s -= l_val_[p] * t.val[l_idx_[p]];
    }
    t.val[k] = s;
  }
  t.dense = true;
  // Step space -> constraint-row space.
  v->Clear();
  v->dense = true;
  for (int k = 0; k < m_; ++k) v->val[row_of_step_[k]] = t.val[k];
  v->RebuildIndex(density_threshold);
}

void BasisFactorization::AppendEta(const ScatterVec& w, int p) {
  SLP_DCHECK(w.val[p] != 0.0);
  if (w.dense) {
    for (int i = 0; i < m_; ++i) {
      if (i == p || w.val[i] == 0.0) continue;
      eta_pos_.push_back(i);
      eta_val_.push_back(w.val[i]);
    }
  } else {
    for (int i : w.idx) {
      if (i == p || w.val[i] == 0.0) continue;
      eta_pos_.push_back(i);
      eta_val_.push_back(w.val[i]);
    }
  }
  eta_start_.push_back(static_cast<int>(eta_pos_.size()));
  eta_pivot_pos_.push_back(p);
  eta_pivot_val_.push_back(w.val[p]);
}

}  // namespace slp::lp
