file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_detail.dir/bench/bench_fig7_detail.cc.o"
  "CMakeFiles/bench_fig7_detail.dir/bench/bench_fig7_detail.cc.o.d"
  "bench/bench_fig7_detail"
  "bench/bench_fig7_detail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_detail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
