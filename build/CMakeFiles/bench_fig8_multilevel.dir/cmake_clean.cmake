file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_multilevel.dir/bench/bench_fig8_multilevel.cc.o"
  "CMakeFiles/bench_fig8_multilevel.dir/bench/bench_fig8_multilevel.cc.o.d"
  "bench/bench_fig8_multilevel"
  "bench/bench_fig8_multilevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_multilevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
