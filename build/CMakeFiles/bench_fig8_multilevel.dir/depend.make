# Empty dependencies file for bench_fig8_multilevel.
# This may be replaced when dependencies are built.
