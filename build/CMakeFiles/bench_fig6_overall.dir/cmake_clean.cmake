file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_overall.dir/bench/bench_fig6_overall.cc.o"
  "CMakeFiles/bench_fig6_overall.dir/bench/bench_fig6_overall.cc.o.d"
  "bench/bench_fig6_overall"
  "bench/bench_fig6_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
