# Empty dependencies file for bench_table2_other_workloads.
# This may be replaced when dependencies are built.
