# Empty dependencies file for bench_fig9_multilevel_detail.
# This may be replaced when dependencies are built.
