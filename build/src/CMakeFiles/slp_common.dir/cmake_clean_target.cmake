file(REMOVE_RECURSE
  "libslp_common.a"
)
