file(REMOVE_RECURSE
  "CMakeFiles/slp_common.dir/common/random.cc.o"
  "CMakeFiles/slp_common.dir/common/random.cc.o.d"
  "libslp_common.a"
  "libslp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
