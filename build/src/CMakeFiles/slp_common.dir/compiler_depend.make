# Empty compiler generated dependencies file for slp_common.
# This may be replaced when dependencies are built.
