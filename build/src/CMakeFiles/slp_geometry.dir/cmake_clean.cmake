file(REMOVE_RECURSE
  "CMakeFiles/slp_geometry.dir/geometry/clustering.cc.o"
  "CMakeFiles/slp_geometry.dir/geometry/clustering.cc.o.d"
  "CMakeFiles/slp_geometry.dir/geometry/filter.cc.o"
  "CMakeFiles/slp_geometry.dir/geometry/filter.cc.o.d"
  "CMakeFiles/slp_geometry.dir/geometry/rectangle.cc.o"
  "CMakeFiles/slp_geometry.dir/geometry/rectangle.cc.o.d"
  "libslp_geometry.a"
  "libslp_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slp_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
