file(REMOVE_RECURSE
  "libslp_geometry.a"
)
