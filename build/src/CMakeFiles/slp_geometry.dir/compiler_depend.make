# Empty compiler generated dependencies file for slp_geometry.
# This may be replaced when dependencies are built.
