
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/clustering.cc" "src/CMakeFiles/slp_geometry.dir/geometry/clustering.cc.o" "gcc" "src/CMakeFiles/slp_geometry.dir/geometry/clustering.cc.o.d"
  "/root/repo/src/geometry/filter.cc" "src/CMakeFiles/slp_geometry.dir/geometry/filter.cc.o" "gcc" "src/CMakeFiles/slp_geometry.dir/geometry/filter.cc.o.d"
  "/root/repo/src/geometry/rectangle.cc" "src/CMakeFiles/slp_geometry.dir/geometry/rectangle.cc.o" "gcc" "src/CMakeFiles/slp_geometry.dir/geometry/rectangle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/slp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
