file(REMOVE_RECURSE
  "CMakeFiles/slp_core.dir/core/assignment.cc.o"
  "CMakeFiles/slp_core.dir/core/assignment.cc.o.d"
  "CMakeFiles/slp_core.dir/core/balance.cc.o"
  "CMakeFiles/slp_core.dir/core/balance.cc.o.d"
  "CMakeFiles/slp_core.dir/core/candidates.cc.o"
  "CMakeFiles/slp_core.dir/core/candidates.cc.o.d"
  "CMakeFiles/slp_core.dir/core/closest.cc.o"
  "CMakeFiles/slp_core.dir/core/closest.cc.o.d"
  "CMakeFiles/slp_core.dir/core/dynamic.cc.o"
  "CMakeFiles/slp_core.dir/core/dynamic.cc.o.d"
  "CMakeFiles/slp_core.dir/core/filter_adjust.cc.o"
  "CMakeFiles/slp_core.dir/core/filter_adjust.cc.o.d"
  "CMakeFiles/slp_core.dir/core/filter_assign.cc.o"
  "CMakeFiles/slp_core.dir/core/filter_assign.cc.o.d"
  "CMakeFiles/slp_core.dir/core/filter_gen.cc.o"
  "CMakeFiles/slp_core.dir/core/filter_gen.cc.o.d"
  "CMakeFiles/slp_core.dir/core/greedy.cc.o"
  "CMakeFiles/slp_core.dir/core/greedy.cc.o.d"
  "CMakeFiles/slp_core.dir/core/lp_relax.cc.o"
  "CMakeFiles/slp_core.dir/core/lp_relax.cc.o.d"
  "CMakeFiles/slp_core.dir/core/metrics.cc.o"
  "CMakeFiles/slp_core.dir/core/metrics.cc.o.d"
  "CMakeFiles/slp_core.dir/core/problem.cc.o"
  "CMakeFiles/slp_core.dir/core/problem.cc.o.d"
  "CMakeFiles/slp_core.dir/core/slp.cc.o"
  "CMakeFiles/slp_core.dir/core/slp.cc.o.d"
  "CMakeFiles/slp_core.dir/core/slp1.cc.o"
  "CMakeFiles/slp_core.dir/core/slp1.cc.o.d"
  "CMakeFiles/slp_core.dir/core/subscription_assign.cc.o"
  "CMakeFiles/slp_core.dir/core/subscription_assign.cc.o.d"
  "libslp_core.a"
  "libslp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
