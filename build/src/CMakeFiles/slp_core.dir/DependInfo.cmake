
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/assignment.cc" "src/CMakeFiles/slp_core.dir/core/assignment.cc.o" "gcc" "src/CMakeFiles/slp_core.dir/core/assignment.cc.o.d"
  "/root/repo/src/core/balance.cc" "src/CMakeFiles/slp_core.dir/core/balance.cc.o" "gcc" "src/CMakeFiles/slp_core.dir/core/balance.cc.o.d"
  "/root/repo/src/core/candidates.cc" "src/CMakeFiles/slp_core.dir/core/candidates.cc.o" "gcc" "src/CMakeFiles/slp_core.dir/core/candidates.cc.o.d"
  "/root/repo/src/core/closest.cc" "src/CMakeFiles/slp_core.dir/core/closest.cc.o" "gcc" "src/CMakeFiles/slp_core.dir/core/closest.cc.o.d"
  "/root/repo/src/core/dynamic.cc" "src/CMakeFiles/slp_core.dir/core/dynamic.cc.o" "gcc" "src/CMakeFiles/slp_core.dir/core/dynamic.cc.o.d"
  "/root/repo/src/core/filter_adjust.cc" "src/CMakeFiles/slp_core.dir/core/filter_adjust.cc.o" "gcc" "src/CMakeFiles/slp_core.dir/core/filter_adjust.cc.o.d"
  "/root/repo/src/core/filter_assign.cc" "src/CMakeFiles/slp_core.dir/core/filter_assign.cc.o" "gcc" "src/CMakeFiles/slp_core.dir/core/filter_assign.cc.o.d"
  "/root/repo/src/core/filter_gen.cc" "src/CMakeFiles/slp_core.dir/core/filter_gen.cc.o" "gcc" "src/CMakeFiles/slp_core.dir/core/filter_gen.cc.o.d"
  "/root/repo/src/core/greedy.cc" "src/CMakeFiles/slp_core.dir/core/greedy.cc.o" "gcc" "src/CMakeFiles/slp_core.dir/core/greedy.cc.o.d"
  "/root/repo/src/core/lp_relax.cc" "src/CMakeFiles/slp_core.dir/core/lp_relax.cc.o" "gcc" "src/CMakeFiles/slp_core.dir/core/lp_relax.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/CMakeFiles/slp_core.dir/core/metrics.cc.o" "gcc" "src/CMakeFiles/slp_core.dir/core/metrics.cc.o.d"
  "/root/repo/src/core/problem.cc" "src/CMakeFiles/slp_core.dir/core/problem.cc.o" "gcc" "src/CMakeFiles/slp_core.dir/core/problem.cc.o.d"
  "/root/repo/src/core/slp.cc" "src/CMakeFiles/slp_core.dir/core/slp.cc.o" "gcc" "src/CMakeFiles/slp_core.dir/core/slp.cc.o.d"
  "/root/repo/src/core/slp1.cc" "src/CMakeFiles/slp_core.dir/core/slp1.cc.o" "gcc" "src/CMakeFiles/slp_core.dir/core/slp1.cc.o.d"
  "/root/repo/src/core/subscription_assign.cc" "src/CMakeFiles/slp_core.dir/core/subscription_assign.cc.o" "gcc" "src/CMakeFiles/slp_core.dir/core/subscription_assign.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/slp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slp_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slp_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slp_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slp_network.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slp_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
