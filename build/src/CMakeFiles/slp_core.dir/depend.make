# Empty dependencies file for slp_core.
# This may be replaced when dependencies are built.
