file(REMOVE_RECURSE
  "libslp_core.a"
)
