file(REMOVE_RECURSE
  "libslp_network.a"
)
