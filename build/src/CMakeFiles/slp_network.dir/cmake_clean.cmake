file(REMOVE_RECURSE
  "CMakeFiles/slp_network.dir/network/broker_tree.cc.o"
  "CMakeFiles/slp_network.dir/network/broker_tree.cc.o.d"
  "CMakeFiles/slp_network.dir/network/tree_builder.cc.o"
  "CMakeFiles/slp_network.dir/network/tree_builder.cc.o.d"
  "libslp_network.a"
  "libslp_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slp_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
