# Empty dependencies file for slp_network.
# This may be replaced when dependencies are built.
