
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/network/broker_tree.cc" "src/CMakeFiles/slp_network.dir/network/broker_tree.cc.o" "gcc" "src/CMakeFiles/slp_network.dir/network/broker_tree.cc.o.d"
  "/root/repo/src/network/tree_builder.cc" "src/CMakeFiles/slp_network.dir/network/tree_builder.cc.o" "gcc" "src/CMakeFiles/slp_network.dir/network/tree_builder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/slp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slp_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
