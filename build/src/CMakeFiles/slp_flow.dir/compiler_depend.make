# Empty compiler generated dependencies file for slp_flow.
# This may be replaced when dependencies are built.
