file(REMOVE_RECURSE
  "libslp_flow.a"
)
