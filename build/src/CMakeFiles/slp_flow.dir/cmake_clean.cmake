file(REMOVE_RECURSE
  "CMakeFiles/slp_flow.dir/flow/max_flow.cc.o"
  "CMakeFiles/slp_flow.dir/flow/max_flow.cc.o.d"
  "libslp_flow.a"
  "libslp_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slp_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
