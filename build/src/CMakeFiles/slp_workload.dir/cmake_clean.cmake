file(REMOVE_RECURSE
  "CMakeFiles/slp_workload.dir/workload/broker_placement.cc.o"
  "CMakeFiles/slp_workload.dir/workload/broker_placement.cc.o.d"
  "CMakeFiles/slp_workload.dir/workload/googlegroups.cc.o"
  "CMakeFiles/slp_workload.dir/workload/googlegroups.cc.o.d"
  "CMakeFiles/slp_workload.dir/workload/grid.cc.o"
  "CMakeFiles/slp_workload.dir/workload/grid.cc.o.d"
  "CMakeFiles/slp_workload.dir/workload/rss.cc.o"
  "CMakeFiles/slp_workload.dir/workload/rss.cc.o.d"
  "libslp_workload.a"
  "libslp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
