
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/broker_placement.cc" "src/CMakeFiles/slp_workload.dir/workload/broker_placement.cc.o" "gcc" "src/CMakeFiles/slp_workload.dir/workload/broker_placement.cc.o.d"
  "/root/repo/src/workload/googlegroups.cc" "src/CMakeFiles/slp_workload.dir/workload/googlegroups.cc.o" "gcc" "src/CMakeFiles/slp_workload.dir/workload/googlegroups.cc.o.d"
  "/root/repo/src/workload/grid.cc" "src/CMakeFiles/slp_workload.dir/workload/grid.cc.o" "gcc" "src/CMakeFiles/slp_workload.dir/workload/grid.cc.o.d"
  "/root/repo/src/workload/rss.cc" "src/CMakeFiles/slp_workload.dir/workload/rss.cc.o" "gcc" "src/CMakeFiles/slp_workload.dir/workload/rss.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/slp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slp_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slp_network.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
