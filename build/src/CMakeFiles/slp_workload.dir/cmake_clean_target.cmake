file(REMOVE_RECURSE
  "libslp_workload.a"
)
