# Empty dependencies file for slp_workload.
# This may be replaced when dependencies are built.
