file(REMOVE_RECURSE
  "CMakeFiles/slp_lp.dir/lp/lp_problem.cc.o"
  "CMakeFiles/slp_lp.dir/lp/lp_problem.cc.o.d"
  "CMakeFiles/slp_lp.dir/lp/simplex.cc.o"
  "CMakeFiles/slp_lp.dir/lp/simplex.cc.o.d"
  "libslp_lp.a"
  "libslp_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slp_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
