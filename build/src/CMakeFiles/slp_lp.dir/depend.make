# Empty dependencies file for slp_lp.
# This may be replaced when dependencies are built.
