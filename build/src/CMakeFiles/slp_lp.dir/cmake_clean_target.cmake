file(REMOVE_RECURSE
  "libslp_lp.a"
)
