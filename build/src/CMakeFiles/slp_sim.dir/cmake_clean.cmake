file(REMOVE_RECURSE
  "CMakeFiles/slp_sim.dir/sim/dissemination.cc.o"
  "CMakeFiles/slp_sim.dir/sim/dissemination.cc.o.d"
  "libslp_sim.a"
  "libslp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
