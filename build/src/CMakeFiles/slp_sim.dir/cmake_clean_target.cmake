file(REMOVE_RECURSE
  "libslp_sim.a"
)
