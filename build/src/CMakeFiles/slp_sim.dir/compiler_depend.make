# Empty compiler generated dependencies file for slp_sim.
# This may be replaced when dependencies are built.
