# Empty dependencies file for continental_feeds.
# This may be replaced when dependencies are built.
