file(REMOVE_RECURSE
  "CMakeFiles/continental_feeds.dir/continental_feeds.cpp.o"
  "CMakeFiles/continental_feeds.dir/continental_feeds.cpp.o.d"
  "continental_feeds"
  "continental_feeds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/continental_feeds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
