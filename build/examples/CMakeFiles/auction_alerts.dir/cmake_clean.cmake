file(REMOVE_RECURSE
  "CMakeFiles/auction_alerts.dir/auction_alerts.cpp.o"
  "CMakeFiles/auction_alerts.dir/auction_alerts.cpp.o.d"
  "auction_alerts"
  "auction_alerts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auction_alerts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
