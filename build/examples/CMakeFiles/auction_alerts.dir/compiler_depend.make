# Empty compiler generated dependencies file for auction_alerts.
# This may be replaced when dependencies are built.
