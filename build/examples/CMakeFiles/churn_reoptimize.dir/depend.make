# Empty dependencies file for churn_reoptimize.
# This may be replaced when dependencies are built.
