file(REMOVE_RECURSE
  "CMakeFiles/churn_reoptimize.dir/churn_reoptimize.cpp.o"
  "CMakeFiles/churn_reoptimize.dir/churn_reoptimize.cpp.o.d"
  "churn_reoptimize"
  "churn_reoptimize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/churn_reoptimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
