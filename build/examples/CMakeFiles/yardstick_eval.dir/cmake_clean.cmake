file(REMOVE_RECURSE
  "CMakeFiles/yardstick_eval.dir/yardstick_eval.cpp.o"
  "CMakeFiles/yardstick_eval.dir/yardstick_eval.cpp.o.d"
  "yardstick_eval"
  "yardstick_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yardstick_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
