# Empty dependencies file for yardstick_eval.
# This may be replaced when dependencies are built.
