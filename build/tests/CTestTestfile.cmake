# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/geometry_test[1]_include.cmake")
include("/root/repo/build/tests/lp_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/network_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/core_problem_test[1]_include.cmake")
include("/root/repo/build/tests/core_baselines_test[1]_include.cmake")
include("/root/repo/build/tests/core_slp_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/dynamic_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
