# Empty dependencies file for core_slp_test.
# This may be replaced when dependencies are built.
