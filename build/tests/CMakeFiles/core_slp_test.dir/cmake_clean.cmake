file(REMOVE_RECURSE
  "CMakeFiles/core_slp_test.dir/core_slp_test.cc.o"
  "CMakeFiles/core_slp_test.dir/core_slp_test.cc.o.d"
  "core_slp_test"
  "core_slp_test.pdb"
  "core_slp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_slp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
