
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/network_test.cc" "tests/CMakeFiles/network_test.dir/network_test.cc.o" "gcc" "tests/CMakeFiles/network_test.dir/network_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/slp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slp_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slp_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slp_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slp_network.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slp_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/slp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
