// Ablations of the design choices DESIGN.md §5 calls out, on the one-level
// (IS:H, BI:H) workload:
//   A. cohesion seeding of the max-flow assignment (on/off);
//   B. enrichment rounds in the assignment step (3/0);
//   C. ε of the coreset/expansion machinery (0.1/0.2/0.4);
//   D. load-balance sample size |Sb| (3·|B| / 5·|B| / 10·|B|).
// Each row reports bandwidth, lbf, LP calls, and wall time for SLP1.

#include "bench/bench_util.h"
#include "src/core/slp1.h"

int main() {
  using namespace slp;
  using namespace slp::bench;

  const int subs = EnvInt("SLP_SUBS", 2500);
  const int brokers = EnvInt("SLP_BROKERS", 16);
  const uint64_t seed = EnvSeed();

  wl::Workload w = wl::GenerateGoogleGroupsVariant(
      wl::Level::kHigh, wl::Level::kHigh, subs, brokers, seed);
  // Calibrate β to the achievable minimum so the ablation compares design
  // choices on a feasible instance (see bench_fig8_multilevel.cc).
  core::SaConfig config;
  {
    core::SaProblem probe = MakeOneLevelProblem(w, config);
    const double floor_lbf = std::max(1.0, MinAchievableLbf(probe, seed));
    config.beta = 1.2 * floor_lbf;
    config.beta_max = 1.4 * floor_lbf;
    std::printf("[calibration] min achievable lbf=%.2f -> beta=%.2f, "
                "beta_max=%.2f\n",
                floor_lbf, config.beta, config.beta_max);
  }
  core::SaProblem problem = MakeOneLevelProblem(std::move(w), config);

  PrintHeader("Ablations of SLP1 design choices ((IS:H, BI:H), " +
              std::to_string(subs) + " subscribers, " +
              std::to_string(brokers) + " brokers)");
  std::printf("%-28s %10s %6s %9s %8s %8s\n", "variant", "bandwidth", "lbf",
              "fractional", "lp_calls", "seconds");

  auto run = [&](const std::string& name, const core::Slp1Options& options) {
    Rng rng(seed);
    WallTimer timer;
    core::Slp1Stats stats;
    auto r = core::RunSlp1(problem, options, rng, &stats);
    if (!r.ok()) {
      std::printf("%-28s FAILED: %s\n", name.c_str(),
                  r.status().ToString().c_str());
      return;
    }
    const auto m = core::ComputeMetrics(problem, r.value());
    std::printf("%-28s %10.4f %6.2f %9.4f %8d %8.1f\n", name.c_str(),
                m.total_bandwidth, m.lbf, r.value().fractional_lower_bound,
                stats.lp_calls, timer.Seconds());
  };

  run("baseline", core::Slp1Options{});

  {
    core::Slp1Options o;
    o.subscription_assign.cohesion_seeding = false;
    run("no cohesion seeding", o);
  }
  {
    core::Slp1Options o;
    o.subscription_assign.enrichment_rounds = 0;
    run("no enrichment", o);
  }
  for (double eps : {0.1, 0.4}) {
    core::Slp1Options o;
    o.filter_assign.eps = eps;
    run("eps = " + std::to_string(eps).substr(0, 3), o);
  }
  for (int sb : {3, 10}) {
    core::Slp1Options o;
    o.filter_assign.sb_factor = sb;
    run("|Sb| = " + std::to_string(sb) + "x brokers", o);
  }
  return 0;
}
