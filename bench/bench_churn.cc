// Churn / soft-state liveness benchmark (DESIGN.md §13): what the lease
// parameters buy and what they cost.
//
// Two experiments on the grid workload:
//  * lease sweep — a mixed plan (sustained crash/recover churn + slow
//    heartbeat-missing brokers) replayed in staleness mode under three
//    lease settings from hair-trigger to conservative. Aggressive leases
//    detect crashes fast but falsely suspect (and prematurely evacuate)
//    slow brokers; conservative leases never evacuate a healthy broker but
//    pay for it in detection latency and events lost undetected. Both ends
//    of the dial are measured outputs of the same replay.
//  * Q(T) inflation — one sustained-churn (down/up only) plan replayed
//    crash-stop (oracle detection) and staleness (lease detection): the
//    extra filter inflation and misses the detector's latency adds to the
//    online-repaired deployment, against the same fresh Gr* baseline.
//
// Prints tables and writes BENCH_churn.json (path from argv[1] or
// SLP_BENCH_CHURN_JSON; default ./BENCH_churn.json).

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/dynamic.h"
#include "src/liveness/liveness_tracker.h"
#include "src/sim/churn_scenarios.h"
#include "src/sim/fault_plan.h"

namespace slp::bench {
namespace {

struct LeaseRow {
  std::string name;
  liveness::LeaseConfig lease;
  int detections = 0;
  double mean_detection_latency = 0;
  int max_detection_latency = 0;
  int false_suspicions = 0;
  int premature_evacuations = 0;
  int64_t missed_undetected = 0;
  int64_t missed_live = 0;
  int lease_expirations = 0;
  int reconnects = 0;
  double qt_inflation = 0;
};

struct ModeRow {
  std::string mode;
  int64_t deliveries = 0;
  int64_t missed_live = 0;
  int64_t missed_outage = 0;
  int64_t missed_undetected = 0;
  int total_orphaned = 0;
  double mean_time_to_repair = 0;
  double qt_final = 0;
  double qt_fresh = 0;
  double qt_inflation = 0;
};

core::DynamicAssigner PopulatedAssigner(const wl::Workload& w,
                                        const core::SaConfig& config,
                                        uint64_t seed) {
  Rng tree_rng(seed);
  net::BrokerTree tree =
      net::BuildMultiLevelTree(w.publisher, w.broker_locations, 15, tree_rng);
  core::DynamicAssigner dyn(std::move(tree), config,
                            static_cast<int>(w.subscribers.size()));
  for (const auto& s : w.subscribers) {
    auto r = dyn.Add(s);
    if (!r.ok()) {
      std::fprintf(stderr, "Add failed: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
  }
  return dyn;
}

std::vector<geo::Point> UniformEvents(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<geo::Point> events;
  events.reserve(n);
  for (int i = 0; i < n; ++i) {
    events.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  return events;
}

sim::FaultReplayResult RunReplay(core::DynamicAssigner& dyn,
                                 const sim::FaultPlan& plan,
                                 const std::vector<geo::Point>& events,
                                 const sim::FaultReplayOptions& options,
                                 uint64_t seed) {
  Rng rng(seed);
  auto replay = sim::ReplayWithFaults(dyn, plan, events, options, rng);
  if (!replay.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 replay.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(replay).value();
}

double MeanLatency(const std::vector<int>& latencies) {
  if (latencies.empty()) return 0;
  double sum = 0;
  for (int l : latencies) sum += l;
  return sum / static_cast<double>(latencies.size());
}

int Main(int argc, char** argv) {
  const char* env = std::getenv("SLP_BENCH_CHURN_JSON");
  const std::string json_path =
      argc > 1 ? argv[1] : (env != nullptr ? env : "BENCH_churn.json");

  const int subs = EnvInt("SLP_SUBS", 5000);
  const int brokers = EnvInt("SLP_BROKERS", 100);
  const int num_events = EnvInt("SLP_EVENTS", 2000);
  const uint64_t seed = EnvSeed();

  wl::GridParams params;
  params.num_subscribers = subs;
  params.num_brokers = brokers;
  params.seed = seed;
  const wl::Workload w = wl::GenerateGrid(params);

  core::SaConfig config;
  config.max_delay = 1.0;

  PrintHeader("Soft-state liveness under churn (grid workload, " +
              std::to_string(subs) + " subscribers, " +
              std::to_string(brokers) + " brokers)");

  // ---- Experiment 1: lease sweep on a mixed churn plan ----
  //
  // The same ground truth for every row: 5% of brokers crash/recover twice,
  // another 5% are alive but miss heartbeat deadlines on a duty cycle, and
  // 2% of clients bounce offline long enough to expire their leases.
  const std::vector<geo::Point> events = UniformEvents(num_events, seed + 31);
  std::vector<LeaseRow> lease_rows;
  {
    liveness::LeaseConfig aggressive;
    aggressive.heartbeat_interval = 1;
    aggressive.miss_suspect = 1;
    aggressive.miss_dead = 2;
    aggressive.subscriber_interval = 4;
    aggressive.subscriber_miss_dead = 4;
    liveness::LeaseConfig balanced;
    balanced.heartbeat_interval = 2;
    balanced.miss_suspect = 2;
    balanced.miss_dead = 4;
    balanced.subscriber_interval = 4;
    balanced.subscriber_miss_dead = 4;
    liveness::LeaseConfig conservative;
    conservative.heartbeat_interval = 4;
    conservative.miss_suspect = 3;
    conservative.miss_dead = 6;
    conservative.subscriber_interval = 8;
    conservative.subscriber_miss_dead = 4;

    std::printf(
        "%-13s %6s %9s %9s %9s %9s %10s %8s %8s %10s\n", "lease", "deaths",
        "mean_lat", "max_lat", "false_sp", "premature", "undetected",
        "expired", "reconn", "inflation");
    for (const auto& [name, lease] :
         std::vector<std::pair<std::string, liveness::LeaseConfig>>{
             {"aggressive", aggressive},
             {"balanced", balanced},
             {"conservative", conservative}}) {
      core::DynamicAssigner dyn = PopulatedAssigner(w, config, seed);
      // Rebuild the identical plan per row (generation consumes the rng).
      Rng churn_rng(seed + 41);
      const sim::FaultPlan churn = sim::SustainedChurn(
          dyn.tree(), num_events, 0.05, num_events / 8, 2, churn_rng);
      Rng slow_rng(seed + 43);
      const sim::FaultPlan slow = sim::SlowBrokers(
          dyn.tree(), num_events, 0.05, num_events / 10, 8, slow_rng);
      Rng flaky_rng(seed + 47);
      const sim::FaultPlan flaky = sim::FlakyClients(
          subs, num_events, 0.02, num_events / 16, 2, flaky_rng);
      std::vector<sim::FaultEvent> merged = churn.events();
      merged.insert(merged.end(), slow.events().begin(), slow.events().end());
      const sim::FaultPlan plan = sim::FaultPlan::Scripted(
          std::move(merged), flaky.client_events());

      sim::FaultReplayOptions options;
      options.epoch_length = num_events / 10;
      options.lease = lease;
      const sim::FaultReplayResult r =
          RunReplay(dyn, plan, events, options, seed + 37);

      LeaseRow row;
      row.name = name;
      row.lease = lease;
      row.detections = static_cast<int>(r.detection_latency.size());
      row.mean_detection_latency = MeanLatency(r.detection_latency);
      for (int l : r.detection_latency) {
        row.max_detection_latency = std::max(row.max_detection_latency, l);
      }
      row.false_suspicions = r.false_suspicions;
      row.premature_evacuations = r.premature_evacuations;
      row.missed_undetected = r.missed_undetected;
      row.missed_live = r.missed_live;
      row.lease_expirations = r.lease_expirations;
      row.reconnects = r.reconnects;
      row.qt_inflation = r.qt_inflation;
      std::printf("%-13s %6d %9.1f %9d %9d %9d %10lld %8d %8d %10.3f\n",
                  name.c_str(), row.detections, row.mean_detection_latency,
                  row.max_detection_latency, row.false_suspicions,
                  row.premature_evacuations,
                  static_cast<long long>(row.missed_undetected),
                  row.lease_expirations, row.reconnects, row.qt_inflation);
      if (row.missed_live != 0) {
        std::fprintf(stderr, "missed_live != 0 under lease %s\n",
                     name.c_str());
        return 1;
      }
      lease_rows.push_back(row);
    }
  }

  // ---- Experiment 2: Q(T) inflation — lease detection vs crash-stop ----
  std::vector<ModeRow> mode_rows;
  {
    std::printf("\n%-11s %10s %9s %9s %10s %9s %8s %9s %9s %10s\n", "mode",
                "delivered", "miss_lv", "miss_out", "undetected", "orphaned",
                "mean_ttr", "qt_final", "qt_fresh", "inflation");
    for (const bool staleness : {false, true}) {
      core::DynamicAssigner dyn = PopulatedAssigner(w, config, seed);
      Rng plan_rng(seed + 29);
      const sim::FaultPlan plan = sim::SustainedChurn(
          dyn.tree(), num_events, 0.10, num_events / 8, 2, plan_rng);
      sim::FaultReplayOptions options;
      options.epoch_length = num_events / 10;
      if (staleness) {
        liveness::LeaseConfig lease;
        lease.heartbeat_interval = 2;
        lease.miss_suspect = 2;
        lease.miss_dead = 4;
        lease.subscriber_interval = 4;
        lease.subscriber_miss_dead = 4;
        options.lease = lease;
      }
      const sim::FaultReplayResult r =
          RunReplay(dyn, plan, events, options, seed + 37);

      ModeRow row;
      row.mode = staleness ? "staleness" : "crash-stop";
      row.deliveries = r.stats.deliveries;
      row.missed_live = r.missed_live;
      row.missed_outage = r.missed_outage;
      row.missed_undetected = r.missed_undetected;
      row.total_orphaned = r.total_orphaned;
      double ttr = 0;
      for (int t : r.time_to_repair) ttr += t;
      row.mean_time_to_repair =
          r.time_to_repair.empty()
              ? 0
              : ttr / static_cast<double>(r.time_to_repair.size());
      row.qt_final = r.qt_final;
      row.qt_fresh = r.qt_fresh;
      row.qt_inflation = r.qt_inflation;
      std::printf("%-11s %10lld %9lld %9lld %10lld %9d %8.1f %9.4f %9.4f "
                  "%10.3f\n",
                  row.mode.c_str(), static_cast<long long>(row.deliveries),
                  static_cast<long long>(row.missed_live),
                  static_cast<long long>(row.missed_outage),
                  static_cast<long long>(row.missed_undetected),
                  row.total_orphaned, row.mean_time_to_repair, row.qt_final,
                  row.qt_fresh, row.qt_inflation);
      if (row.missed_live != 0) {
        std::fprintf(stderr, "missed_live != 0 in %s mode\n",
                     row.mode.c_str());
        return 1;
      }
      mode_rows.push_back(row);
    }
  }

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"workload\": \"grid\",\n");
  std::fprintf(f, "  \"subscribers\": %d,\n  \"brokers\": %d,\n", subs,
               brokers);
  std::fprintf(f, "  \"events\": %d,\n", num_events);
  std::fprintf(f, "  \"lease_sweep\": [\n");
  for (size_t i = 0; i < lease_rows.size(); ++i) {
    const LeaseRow& r = lease_rows[i];
    std::fprintf(
        f,
        "    {\"lease\": \"%s\", \"heartbeat_interval\": %lld, "
        "\"miss_suspect\": %d, \"miss_dead\": %d, \"detections\": %d, "
        "\"mean_detection_latency\": %.2f, \"max_detection_latency\": %d, "
        "\"false_suspicions\": %d, \"premature_evacuations\": %d, "
        "\"missed_undetected\": %lld, \"missed_live\": %lld, "
        "\"lease_expirations\": %d, \"reconnects\": %d, "
        "\"qt_inflation\": %.4f}%s\n",
        r.name.c_str(), static_cast<long long>(r.lease.heartbeat_interval),
        r.lease.miss_suspect, r.lease.miss_dead, r.detections,
        r.mean_detection_latency, r.max_detection_latency,
        r.false_suspicions, r.premature_evacuations,
        static_cast<long long>(r.missed_undetected),
        static_cast<long long>(r.missed_live), r.lease_expirations,
        r.reconnects, r.qt_inflation,
        i + 1 < lease_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"qt_under_churn\": [\n");
  for (size_t i = 0; i < mode_rows.size(); ++i) {
    const ModeRow& r = mode_rows[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"deliveries\": %lld, \"missed_live\": "
        "%lld, \"missed_outage\": %lld, \"missed_undetected\": %lld, "
        "\"total_orphaned\": %d, \"mean_time_to_repair\": %.2f, "
        "\"qt_final\": %.6f, \"qt_fresh\": %.6f, \"qt_inflation\": %.4f}%s\n",
        r.mode.c_str(), static_cast<long long>(r.deliveries),
        static_cast<long long>(r.missed_live),
        static_cast<long long>(r.missed_outage),
        static_cast<long long>(r.missed_undetected), r.total_orphaned,
        r.mean_time_to_repair, r.qt_final, r.qt_fresh, r.qt_inflation,
        i + 1 < mode_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace slp::bench

int main(int argc, char** argv) { return slp::bench::Main(argc, argv); }
