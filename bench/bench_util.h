// Shared plumbing for the paper-reproduction benchmark harness.
//
// Every bench binary reproduces one table or figure of the paper. Scales
// default to laptop-friendly sizes (the paper used CPLEX and hours of
// runtime; see DESIGN.md §4) and can be overridden with environment
// variables:
//   SLP_SUBS    — number of subscribers
//   SLP_BROKERS — number of brokers
//   SLP_SEED    — workload/algorithm seed

#ifndef SLP_BENCH_BENCH_UTIL_H_
#define SLP_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "src/common/random.h"
#include "src/common/timer.h"
#include "src/core/balance.h"
#include "src/core/closest.h"
#include "src/core/greedy.h"
#include "src/core/metrics.h"
#include "src/core/problem.h"
#include "src/core/slp.h"
#include "src/core/slp1.h"
#include "src/network/tree_builder.h"
#include "src/workload/googlegroups.h"
#include "src/workload/grid.h"
#include "src/workload/rss.h"

namespace slp::bench {

inline int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

inline uint64_t EnvSeed() {
  return static_cast<uint64_t>(EnvInt("SLP_SEED", 1));
}

// One algorithm run: solution + metrics + wall time.
struct RunResult {
  std::string name;
  core::SaSolution solution;
  core::SolutionMetrics metrics;
  double seconds = 0;
};

using Algorithm = core::SaSolution (*)(const core::SaProblem&, Rng&);

inline core::SaSolution RunSlp1Adapter(const core::SaProblem& p, Rng& rng) {
  auto r = core::RunSlp1(p, core::Slp1Options{}, rng);
  if (!r.ok()) {
    std::fprintf(stderr, "SLP1 failed: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

inline core::SaSolution RunSlpAdapter(const core::SaProblem& p, Rng& rng) {
  auto r = core::RunSlp(p, core::SlpOptions{}, rng);
  if (!r.ok()) {
    std::fprintf(stderr, "SLP failed: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

inline RunResult RunAlgorithm(const std::string& name, Algorithm algo,
                              const core::SaProblem& problem, uint64_t seed) {
  RunResult out;
  out.name = name;
  Rng rng(seed);
  WallTimer timer;
  out.solution = algo(problem, rng);
  out.seconds = timer.Seconds();
  out.metrics = core::ComputeMetrics(problem, out.solution);
  return out;
}

// The named algorithm set of Section VI.
inline std::vector<std::pair<std::string, Algorithm>> AllAlgorithms(
    bool multi_level) {
  return {
      {multi_level ? "SLP" : "SLP1",
       multi_level ? &RunSlpAdapter : &RunSlp1Adapter},
      {"Gr", &core::RunGr},
      {"Gr*", &core::RunGrStar},
      {"Gr-l", &core::RunGrNoLatency},
      {"Closest", &core::RunClosest},
      {"Closest-b", &core::RunClosestNoBalance},
      {"Balance", &core::RunBalance},
  };
}

// Builds a one-level problem for a generated workload.
inline core::SaProblem MakeOneLevelProblem(wl::Workload w,
                                           core::SaConfig config) {
  net::BrokerTree tree =
      net::BuildOneLevelTree(w.publisher, w.broker_locations);
  return core::SaProblem(std::move(tree), std::move(w.subscribers), config);
}

// Builds a multi-level problem (paper: max out-degree 15).
inline core::SaProblem MakeMultiLevelProblem(wl::Workload w,
                                             core::SaConfig config,
                                             int out_degree, uint64_t seed) {
  Rng rng(seed);
  net::BrokerTree tree = net::BuildMultiLevelTree(
      w.publisher, w.broker_locations, out_degree, rng);
  return core::SaProblem(std::move(tree), std::move(w.subscribers), config);
}

// The paper's four set-#1 workloads in presentation order.
inline std::vector<std::pair<std::string, std::pair<wl::Level, wl::Level>>>
Set1Variants() {
  using L = wl::Level;
  return {
      {"(IS:L, BI:L)", {L::kLow, L::kLow}},
      {"(IS:H, BI:L)", {L::kHigh, L::kLow}},
      {"(IS:L, BI:H)", {L::kLow, L::kHigh}},
      {"(IS:H, BI:H)", {L::kHigh, L::kHigh}},
  };
}

// Minimum achievable load-balance factor under the latency constraint,
// computed with the Balance baseline (binary search + max-flow). The paper
// calibrates its multi-level β settings to this quantity ("the minimum
// possible lbf is around 6" for its tight setting).
inline double MinAchievableLbf(const core::SaProblem& problem,
                               uint64_t seed) {
  Rng rng(seed);
  core::SaSolution s = core::RunBalance(problem, rng);
  return core::LoadBalanceFactor(problem, s);
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline const char* Feasibility(const core::SaSolution& s) {
  if (s.load_feasible && s.latency_feasible) return "ok";
  if (!s.load_feasible && !s.latency_feasible) return "load+lat!";
  return s.load_feasible ? "lat!" : "load!";
}

}  // namespace slp::bench

#endif  // SLP_BENCH_BENCH_UTIL_H_
