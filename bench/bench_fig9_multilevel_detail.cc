// Figure 9 — multi-level SLP vs Gr* details (workload set #1):
//   9(a) bandwidth per workload under the tight and loose latency settings;
//   9(b) broker-load five-number summaries on (IS:L, BI:H).
//
// Expected shape (paper): Gr* often edges out SLP on bandwidth, but under
// the tight setting Gr* cannot satisfy the load constraints (>10% of
// brokers overloaded) while SLP does.

#include "bench/bench_util.h"

int main() {
  using namespace slp;
  using namespace slp::bench;

  const int subs = EnvInt("SLP_SUBS", 3000);
  const int brokers = EnvInt("SLP_BROKERS", 60);
  const int out_degree = EnvInt("SLP_OUT_DEGREE", 15);
  const uint64_t seed = EnvSeed();

  // β calibrated to the minimum achievable lbf, as the paper does (see
  // bench_fig8_multilevel.cc).
  core::SaConfig tight;
  tight.max_delay = 0.2;
  core::SaConfig loose;
  loose.max_delay = 1.0;
  for (core::SaConfig* config : {&tight, &loose}) {
    wl::Workload w = wl::GenerateGoogleGroupsVariant(
        wl::Level::kHigh, wl::Level::kLow, subs, brokers, seed);
    core::SaProblem probe =
        MakeMultiLevelProblem(std::move(w), *config, out_degree, seed);
    const double floor_lbf = std::max(1.0, MinAchievableLbf(probe, seed));
    config->beta = 1.2 * floor_lbf;
    config->beta_max = 1.4 * floor_lbf;
    std::printf("[calibration] maxdelay=%.1f: min lbf=%.2f -> beta=%.2f, "
                "beta_max=%.2f\n",
                config->max_delay, floor_lbf, config->beta, config->beta_max);
  }

  PrintHeader("Figure 9(a): multi-level bandwidth, SLP vs Gr*, tight vs "
              "loose latency (set #1); " + std::to_string(subs) +
              " subscribers, " + std::to_string(brokers) + " brokers");
  std::printf("%-14s %12s %12s %12s %12s\n", "workload", "SLP(tight)",
              "Gr*(tight)", "SLP(loose)", "Gr*(loose)");
  for (const auto& [wname, levels] : Set1Variants()) {
    double bw[4];
    int idx = 0;
    for (const core::SaConfig& config : {tight, loose}) {
      wl::Workload w = wl::GenerateGoogleGroupsVariant(
          levels.first, levels.second, subs, brokers, seed);
      core::SaProblem problem =
          MakeMultiLevelProblem(std::move(w), config, out_degree, seed);
      bw[idx++] =
          RunAlgorithm("SLP", &RunSlpAdapter, problem, seed).metrics.total_bandwidth;
      bw[idx++] =
          RunAlgorithm("Gr*", &core::RunGrStar, problem, seed).metrics.total_bandwidth;
    }
    std::printf("%-14s %12.4f %12.4f %12.4f %12.4f\n", wname.c_str(), bw[0],
                bw[1], bw[2], bw[3]);
  }

  PrintHeader("Figure 9(b): broker loads on (IS:L, BI:H), tight vs loose");
  std::printf("%-16s %6s %6s %8s %6s %6s %6s %9s\n", "setting/algorithm",
              "min", "q1", "median", "q3", "max", "lbf", "overload%");
  for (const auto& [sname, config] :
       std::vector<std::pair<const char*, core::SaConfig>>{{"tight", tight},
                                                           {"loose", loose}}) {
    wl::Workload w = wl::GenerateGoogleGroupsVariant(
        wl::Level::kLow, wl::Level::kHigh, subs, brokers, seed);
    core::SaProblem problem =
        MakeMultiLevelProblem(std::move(w), config, out_degree, seed);
    for (const auto& [name, algo] :
         std::vector<std::pair<const char*, Algorithm>>{
             {"SLP", &RunSlpAdapter}, {"Gr*", &core::RunGrStar}}) {
      RunResult r = RunAlgorithm(name, algo, problem, seed);
      const core::LoadSummary s = core::SummarizeLoads(r.metrics.loads);
      const double m = problem.num_subscribers();
      int overloaded = 0;
      for (size_t i = 0; i < r.metrics.loads.size(); ++i) {
        const double cap =
            config.beta_max * problem.capacity_fraction(static_cast<int>(i)) * m;
        overloaded += (r.metrics.loads[i] > cap + 1e-9);
      }
      std::printf("%-8s %-7s %6d %6d %8d %6d %6d %6.2f %8.1f%%\n", sname,
                  name, s.min, s.q1, s.median, s.q3, s.max, r.metrics.lbf,
                  100.0 * overloaded / r.metrics.loads.size());
    }
  }
  return 0;
}
