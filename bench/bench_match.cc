// Matching-engine benchmark (DESIGN.md §11): events/sec of the legacy
// linear-scan dissemination engine vs the grid-indexed engine, single
// thread and sharded over the shared thread pool, on a large grid
// workload (defaults: 1000 brokers, 100k subscribers, multi-level tree
// with the paper's out-degree 15).
//
// The solution is a fast hand-rolled nearest-leaf assignment with exact
// MEB path filters — coverage and nesting hold by construction, so the
// stream routes with zero missed deliveries and the two engines must
// produce bit-identical stats (checked here on a common event prefix
// before timing; the full differential lives in tests/match_test).
//
// The legacy engine is timed on a short event prefix (its ground-truth
// walk is O(m) per event — 100k subscriptions per event makes long
// streams pointless); the indexed engine routes the full stream. Events
// come from deterministic per-shard Rng::Fork substreams, so the stream
// is identical regardless of how it is later sharded.
//
// Prints a table and writes BENCH_match.json (path from argv[1] or
// SLP_BENCH_MATCH_JSON; default ./BENCH_match.json).

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/parallel.h"
#include "src/geometry/rectangle.h"
#include "src/sim/dissemination.h"

namespace slp::bench {
namespace {

// Nearest-live-leaf assignment + exact MEB filters, bottom-up. Much
// faster than the paper's algorithms at 100k subscribers, and produces a
// covering + nested deployment, which is all the matching benchmark
// needs.
core::SaSolution NearestLeafSolution(const core::SaProblem& problem) {
  const net::BrokerTree& tree = problem.tree();
  const int m = problem.num_subscribers();
  core::SaSolution s;
  s.algorithm = "nearest-leaf";
  s.assignment.assign(m, -1);

  const std::vector<int>& leaves = tree.leaf_brokers();
  for (int j = 0; j < m; ++j) {
    const geo::Point& loc = problem.subscriber(j).location;
    double best = 0;
    int best_leaf = -1;
    for (int leaf : leaves) {
      const double d = geo::DistanceSquared(loc, tree.location(leaf));
      if (best_leaf < 0 || d < best) {
        best = d;
        best_leaf = leaf;
      }
    }
    s.assignment[j] = best_leaf;
  }

  // Leaf filters: MEB of the leaf's subscriptions. Internal filters: MEB
  // of the children's filters (nesting by construction). Nodes are
  // processed children-before-parent via reverse BFS order.
  const int n = tree.num_nodes();
  std::vector<bool> has_rect(n, false);
  std::vector<geo::Rectangle> rect(n);
  for (int j = 0; j < m; ++j) {
    const int leaf = s.assignment[j];
    const geo::Rectangle& sub = problem.subscriber(j).subscription;
    if (!has_rect[leaf]) {
      rect[leaf] = sub;
      has_rect[leaf] = true;
    } else {
      rect[leaf].Enclose(sub);
    }
  }
  std::vector<int> order;
  order.reserve(n);
  order.push_back(net::BrokerTree::kPublisher);
  for (size_t i = 0; i < order.size(); ++i) {
    for (int c : tree.children(order[i])) order.push_back(c);
  }
  for (size_t i = order.size(); i-- > 0;) {
    const int v = order[i];
    for (int c : tree.children(v)) {
      if (!has_rect[c]) continue;
      if (!has_rect[v]) {
        rect[v] = rect[c];
        has_rect[v] = true;
      } else {
        rect[v].Enclose(rect[c]);
      }
    }
  }
  s.filters.assign(n, geo::Filter());
  for (int v = 0; v < n; ++v) {
    if (v != net::BrokerTree::kPublisher && has_rect[v]) {
      s.filters[v] = geo::Filter({rect[v]});
    }
  }
  return s;
}

bool StatsEqual(const sim::DisseminationStats& a,
                const sim::DisseminationStats& b) {
  return a.events == b.events && a.total_messages == b.total_messages &&
         a.deliveries == b.deliveries &&
         a.wasted_leaf_hits == b.wasted_leaf_hits &&
         a.missed_deliveries == b.missed_deliveries &&
         a.unplaced_subscribers == b.unplaced_subscribers &&
         a.broker_hits == b.broker_hits;
}

int Main(int argc, char** argv) {
  const char* env = std::getenv("SLP_BENCH_MATCH_JSON");
  const std::string json_path =
      argc > 1 ? argv[1] : (env != nullptr ? env : "BENCH_match.json");

  const int subs = EnvInt("SLP_SUBS", 100000);
  const int brokers = EnvInt("SLP_BROKERS", 1000);
  const int num_events = EnvInt("SLP_EVENTS", 20000);
  const int linear_events = std::min(EnvInt("SLP_LINEAR_EVENTS", 2000),
                                     num_events);
  // Default shard count: the machine's cores, capped at 8 (on a 1-core
  // box the sharded row then honestly shows pool overhead, not parallel
  // gain).
  const int default_shards = std::clamp(
      static_cast<int>(std::thread::hardware_concurrency()), 2, 8);
  const int num_shards = EnvInt("SLP_SHARDS", default_shards);
  const uint64_t seed = EnvSeed();

  wl::GridParams params;
  params.num_subscribers = subs;
  params.num_brokers = brokers;
  params.seed = seed;
  wl::Workload w = wl::GenerateGrid(params);
  core::SaConfig config;
  config.max_delay = 1.0;
  core::SaProblem problem =
      MakeMultiLevelProblem(std::move(w), config, 15, seed);

  WallTimer solve_timer;
  const core::SaSolution solution = NearestLeafSolution(problem);
  const double solve_seconds = solve_timer.Seconds();

  // Deterministic per-shard event substreams: shard i draws its chunk
  // from rng.Fork(i), so the concatenated stream does not depend on how
  // the simulator later shards it.
  std::vector<geo::Point> events;
  events.reserve(num_events);
  {
    Rng rng(seed + 7);
    for (int s = 0; s < num_shards; ++s) {
      Rng sub = rng.Fork(static_cast<uint64_t>(s));
      const int begin = static_cast<int>(
          static_cast<int64_t>(num_events) * s / num_shards);
      const int end = static_cast<int>(
          static_cast<int64_t>(num_events) * (s + 1) / num_shards);
      for (int i = begin; i < end; ++i) {
        events.push_back({sub.Uniform(0, 1), sub.Uniform(0, 1)});
      }
    }
  }
  const std::vector<geo::Point> prefix(events.begin(),
                                       events.begin() + linear_events);

  PrintHeader("Matching engines (grid workload, " + std::to_string(subs) +
              " subscribers, " + std::to_string(brokers) + " brokers)");
  std::printf("nearest-leaf solve: %.2fs; stream: %d events "
              "(linear prefix %d)\n\n",
              solve_seconds, num_events, linear_events);

  // Differential on the common prefix before timing anything.
  const sim::DisseminationStats lin_stats =
      sim::Simulate(problem, solution, prefix, {sim::MatchEngine::kLinear, 1});
  const sim::DisseminationStats idx_stats =
      sim::Simulate(problem, solution, prefix, {sim::MatchEngine::kIndexed, 1});
  const bool differential_ok = StatsEqual(lin_stats, idx_stats);
  if (!differential_ok) {
    std::fprintf(stderr, "ENGINE MISMATCH on %d-event prefix\n",
                 linear_events);
  }
  if (lin_stats.missed_deliveries != 0) {
    std::fprintf(stderr, "nearest-leaf solution missed deliveries\n");
    return 1;
  }

  // Timed runs (index build cost included in the indexed timings).
  WallTimer lin_timer;
  sim::Simulate(problem, solution, prefix, {sim::MatchEngine::kLinear, 1});
  const double lin_seconds = lin_timer.Seconds();
  const double lin_eps = linear_events / lin_seconds;

  WallTimer idx_timer;
  const sim::DisseminationStats full_idx =
      sim::Simulate(problem, solution, events, {sim::MatchEngine::kIndexed, 1});
  const double idx_seconds = idx_timer.Seconds();
  const double idx_eps = num_events / idx_seconds;

  WallTimer shard_timer;
  const sim::DisseminationStats full_sharded = sim::Simulate(
      problem, solution, events, {sim::MatchEngine::kIndexed, num_shards});
  const double shard_seconds = shard_timer.Seconds();
  const double shard_eps = num_events / shard_seconds;

  const bool sharded_ok = StatsEqual(full_idx, full_sharded);
  if (!sharded_ok) {
    std::fprintf(stderr, "SHARDED MISMATCH (%d shards)\n", num_shards);
  }

  std::printf("%-22s %10s %14s %9s\n", "engine", "events", "events/sec",
              "speedup");
  std::printf("%-22s %10d %14.0f %9s\n", "linear (legacy)", linear_events,
              lin_eps, "1.0x");
  std::printf("%-22s %10d %14.0f %8.1fx\n", "indexed", num_events, idx_eps,
              idx_eps / lin_eps);
  std::printf("%-22s %10d %14.0f %8.1fx\n",
              ("indexed x" + std::to_string(num_shards)).c_str(), num_events,
              shard_eps, shard_eps / lin_eps);
  std::printf("\ndifferential (prefix): %s; sharded == serial: %s\n",
              differential_ok ? "identical" : "MISMATCH",
              sharded_ok ? "identical" : "MISMATCH");

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"workload\": \"grid\",\n");
  std::fprintf(f, "  \"subscribers\": %d,\n  \"brokers\": %d,\n", subs,
               brokers);
  std::fprintf(f, "  \"events\": %d,\n  \"linear_events\": %d,\n",
               num_events, linear_events);
  std::fprintf(f, "  \"num_shards\": %d,\n", num_shards);
  std::fprintf(f, "  \"linear_events_per_sec\": %.1f,\n", lin_eps);
  std::fprintf(f, "  \"indexed_events_per_sec\": %.1f,\n", idx_eps);
  std::fprintf(f, "  \"sharded_events_per_sec\": %.1f,\n", shard_eps);
  std::fprintf(f, "  \"speedup_indexed\": %.2f,\n", idx_eps / lin_eps);
  std::fprintf(f, "  \"speedup_sharded\": %.2f,\n", shard_eps / lin_eps);
  std::fprintf(f, "  \"differential_identical\": %s,\n",
               differential_ok ? "true" : "false");
  std::fprintf(f, "  \"sharded_identical\": %s\n",
               sharded_ok ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return differential_ok && sharded_ok ? 0 : 1;
}

}  // namespace
}  // namespace slp::bench

int main(int argc, char** argv) { return slp::bench::Main(argc, argv); }
