// Crash-tolerance benchmark (DESIGN.md §9): repair throughput and Q(T)
// inflation at 1% / 5% / 10% broker-failure rates on the grid workload.
//
// Two experiments per failure rate:
//  * repair throughput — fail that fraction of leaf brokers at once on a
//    populated DynamicAssigner and drain the orphan backlog with one
//    funded RepairEngine pass (orphans repaired per second);
//  * fault replay — a seeded-random FaultPlan at the same rate interleaved
//    with an event stream, reporting missed deliveries by cause,
//    time-to-repair, and the Q(T) inflation of the online-repaired
//    deployment against a fresh offline Gr* over the surviving topology.
//
// Prints a table and writes BENCH_repair.json (path from argv[1] or
// SLP_BENCH_REPAIR_JSON; default ./BENCH_repair.json).

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/dynamic.h"
#include "src/core/repair.h"
#include "src/sim/fault_plan.h"

namespace slp::bench {
namespace {

struct RepairRow {
  double rate = 0;
  int leaves_failed = 0;
  int orphans = 0;
  int repaired = 0;
  int degraded = 0;
  double seconds = 0;
  double orphans_per_sec = 0;
};

struct ReplayRow {
  double rate = 0;
  int total_orphaned = 0;
  int total_repaired = 0;
  int total_degraded = 0;
  int64_t missed_live = 0;
  int64_t missed_outage = 0;
  double mean_time_to_repair = 0;
  double qt_final = 0;
  double qt_fresh = 0;
  double qt_inflation = 0;
};

core::DynamicAssigner PopulatedAssigner(const wl::Workload& w,
                                        const core::SaConfig& config,
                                        uint64_t seed) {
  Rng tree_rng(seed);
  net::BrokerTree tree =
      net::BuildMultiLevelTree(w.publisher, w.broker_locations, 15, tree_rng);
  core::DynamicAssigner dyn(std::move(tree), config,
                            static_cast<int>(w.subscribers.size()));
  for (const auto& s : w.subscribers) {
    auto r = dyn.Add(s);
    if (!r.ok()) {
      std::fprintf(stderr, "Add failed: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
  }
  return dyn;
}

int Main(int argc, char** argv) {
  const char* env = std::getenv("SLP_BENCH_REPAIR_JSON");
  const std::string json_path =
      argc > 1 ? argv[1] : (env != nullptr ? env : "BENCH_repair.json");

  const int subs = EnvInt("SLP_SUBS", 5000);
  const int brokers = EnvInt("SLP_BROKERS", 100);
  const int num_events = EnvInt("SLP_EVENTS", 2000);
  const uint64_t seed = EnvSeed();

  wl::GridParams params;
  params.num_subscribers = subs;
  params.num_brokers = brokers;
  params.seed = seed;
  const wl::Workload w = wl::GenerateGrid(params);

  core::SaConfig config;
  config.max_delay = 1.0;

  PrintHeader("Broker-failure repair (grid workload, " +
              std::to_string(subs) + " subscribers, " +
              std::to_string(brokers) + " brokers)");

  const std::vector<double> rates = {0.01, 0.05, 0.10};
  std::vector<RepairRow> repair_rows;
  std::vector<ReplayRow> replay_rows;

  // ---- Experiment 1: mass-failure repair throughput ----
  std::printf("%-6s %8s %8s %9s %9s %10s %14s\n", "rate", "failed",
              "orphans", "repaired", "degraded", "seconds", "orphans/s");
  for (double rate : rates) {
    core::DynamicAssigner dyn = PopulatedAssigner(w, config, seed);
    const std::vector<int> leaves = dyn.tree().live_leaf_brokers();
    const int kill = std::max(
        1, static_cast<int>(std::ceil(rate * static_cast<double>(
                                                 leaves.size()))));
    Rng pick_rng(seed + 17);
    const std::vector<int> victims = UniformSampleWithoutReplacement(
        static_cast<int>(leaves.size()), kill, pick_rng);

    RepairRow row;
    row.rate = rate;
    row.leaves_failed = kill;
    for (int v : victims) {
      const auto st = dyn.FailBroker(leaves[v]);
      if (!st.ok()) {
        std::fprintf(stderr, "FailBroker: %s\n", st.ToString().c_str());
        std::exit(1);
      }
    }
    row.orphans = static_cast<int>(dyn.orphans().size());

    core::RepairEngine engine(&dyn);
    WallTimer timer;
    const core::RepairReport report = engine.Repair(Deadline::Infinite());
    row.seconds = timer.Seconds();
    row.repaired = report.repaired;
    row.degraded = report.degraded;
    row.orphans_per_sec =
        row.seconds > 0 ? row.orphans / row.seconds : 0;
    std::printf("%-6.2f %8d %8d %9d %9d %10.4f %14.0f\n", rate,
                row.leaves_failed, row.orphans, row.repaired, row.degraded,
                row.seconds, row.orphans_per_sec);
    repair_rows.push_back(row);
  }

  // ---- Experiment 2: fault replay with Q(T) inflation ----
  std::printf("\n%-6s %9s %9s %9s %8s %8s %8s %9s %9s %10s\n", "rate",
              "orphaned", "repaired", "degraded", "miss_lv", "miss_out",
              "mean_ttr", "qt_final", "qt_fresh", "inflation");
  for (double rate : rates) {
    core::DynamicAssigner dyn = PopulatedAssigner(w, config, seed);
    Rng plan_rng(seed + 29);
    const sim::FaultPlan plan = sim::FaultPlan::SeededRandom(
        dyn.tree(), num_events, rate, num_events / 4, plan_rng);

    Rng event_rng(seed + 31);
    std::vector<geo::Point> events;
    events.reserve(num_events);
    for (int i = 0; i < num_events; ++i) {
      events.push_back({event_rng.Uniform(0, 1), event_rng.Uniform(0, 1)});
    }

    sim::FaultReplayOptions options;
    options.epoch_length = 200;
    Rng rng(seed + 37);
    const auto replay = sim::ReplayWithFaults(dyn, plan, events, options, rng);
    if (!replay.ok()) {
      std::fprintf(stderr, "replay failed: %s\n",
                   replay.status().ToString().c_str());
      std::exit(1);
    }
    const sim::FaultReplayResult& r = replay.value();

    ReplayRow row;
    row.rate = rate;
    row.total_orphaned = r.total_orphaned;
    row.total_repaired = r.total_repaired;
    row.total_degraded = r.total_degraded_placed;
    row.missed_live = r.missed_live;
    row.missed_outage = r.missed_outage;
    double ttr = 0;
    for (int t : r.time_to_repair) ttr += t;
    row.mean_time_to_repair =
        r.time_to_repair.empty() ? 0 : ttr / r.time_to_repair.size();
    row.qt_final = r.qt_final;
    row.qt_fresh = r.qt_fresh;
    row.qt_inflation = r.qt_inflation;
    std::printf("%-6.2f %9d %9d %9d %8lld %8lld %8.1f %9.4f %9.4f %10.3f\n",
                rate, row.total_orphaned, row.total_repaired,
                row.total_degraded, static_cast<long long>(row.missed_live),
                static_cast<long long>(row.missed_outage),
                row.mean_time_to_repair, row.qt_final, row.qt_fresh,
                row.qt_inflation);
    replay_rows.push_back(row);
  }

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"workload\": \"grid\",\n");
  std::fprintf(f, "  \"subscribers\": %d,\n  \"brokers\": %d,\n", subs,
               brokers);
  std::fprintf(f, "  \"repair_throughput\": [\n");
  for (size_t i = 0; i < repair_rows.size(); ++i) {
    const RepairRow& r = repair_rows[i];
    std::fprintf(f,
                 "    {\"rate\": %.2f, \"leaves_failed\": %d, \"orphans\": "
                 "%d, \"repaired\": %d, \"degraded\": %d, \"seconds\": %.6f, "
                 "\"orphans_per_sec\": %.1f}%s\n",
                 r.rate, r.leaves_failed, r.orphans, r.repaired, r.degraded,
                 r.seconds, r.orphans_per_sec,
                 i + 1 < repair_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"fault_replay\": [\n");
  for (size_t i = 0; i < replay_rows.size(); ++i) {
    const ReplayRow& r = replay_rows[i];
    std::fprintf(
        f,
        "    {\"rate\": %.2f, \"total_orphaned\": %d, \"total_repaired\": "
        "%d, \"total_degraded\": %d, \"missed_live\": %lld, "
        "\"missed_outage\": %lld, \"mean_time_to_repair\": %.2f, "
        "\"qt_final\": %.6f, \"qt_fresh\": %.6f, \"qt_inflation\": %.4f}%s\n",
        r.rate, r.total_orphaned, r.total_repaired, r.total_degraded,
        static_cast<long long>(r.missed_live),
        static_cast<long long>(r.missed_outage), r.mean_time_to_repair,
        r.qt_final, r.qt_fresh, r.qt_inflation,
        i + 1 < replay_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace slp::bench

int main(int argc, char** argv) { return slp::bench::Main(argc, argv); }
