// LP engine benchmark: sparse LU/eta revised simplex vs the legacy dense
// basis-inverse engine, warm-started β-escalation re-solves vs cold
// re-solves, and the dual-simplex rung re-solve (ResolveDual) vs both, on
// LPRelax-shaped instances; plus end-to-end FilterAssign throughput.
// Prints tables and writes BENCH_lp.json (path from argv[1] or
// SLP_BENCH_LP_JSON; default ./BENCH_lp.json) recording the speedups.
//
// The instances mimic the FilterAssign ladder's LPs: covering rows (C2),
// per-target capacity rows with penalized slack (C3), box variables. The
// "escalation" step is the ladder's rung change — cap rhs loosened, slack
// penalties retuned in place — re-solved either warm (previous basis as
// hint) or cold. The "dual_resolve" series tightens the caps instead
// (rhs-only edit: the retained basis stays dual-feasible but goes primal
// infeasible — the dual loop's home turf) and re-solves cold, primal-warm,
// and dually.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/random.h"
#include "src/common/timer.h"
#include "src/core/candidates.h"
#include "src/core/filter_assign.h"
#include "src/core/problem.h"
#include "src/lp/lp_problem.h"
#include "src/lp/simplex.h"

namespace slp::bench {
namespace {

struct LadderLp {
  lp::LpProblem p;
  std::vector<int> cap_rows;    // (C3)-analogue rows
  std::vector<int> slack_vars;  // their penalized slacks
};

// An LPRelax-shaped instance with exactly `rows` constraints: T capacity
// rows (with penalized slack) and rows-T covering rows, ~6 candidate
// targets per covering row.
LadderLp MakeLadderLp(int rows, Rng& rng) {
  constexpr int kTargets = 20;
  constexpr int kCandidates = 6;
  constexpr double kPenalty = 1e4;
  const int items = rows - kTargets;

  LadderLp out;
  std::vector<std::vector<int>> members(kTargets);  // x vars per cap row
  for (int j = 0; j < items; ++j) {
    // Candidate targets: a distinct random subset of size kCandidates.
    std::vector<int> cand;
    while (static_cast<int>(cand.size()) < kCandidates) {
      const int t = static_cast<int>(rng.UniformInt(0, kTargets - 1));
      if (std::find(cand.begin(), cand.end(), t) == cand.end()) {
        cand.push_back(t);
      }
    }
    const int row = out.p.AddConstraint(lp::Sense::kGreaterEqual, 1);
    for (int t : cand) {
      const int v = out.p.AddVariable(rng.Uniform(0.1, 2), 0, 1);
      out.p.AddEntry(row, v, 1);
      members[t].push_back(v);
    }
  }
  const double cap = 1.2 * items * kCandidates / kTargets;
  for (int t = 0; t < kTargets; ++t) {
    const int row = out.p.AddConstraint(lp::Sense::kLessEqual, cap);
    for (int v : members[t]) out.p.AddEntry(row, v, 1);
    const int slack = out.p.AddVariable(kPenalty, 0, lp::kInfinity);
    out.p.AddEntry(row, slack, -1);
    out.cap_rows.push_back(row);
    out.slack_vars.push_back(slack);
  }
  return out;
}

// The ladder's rung change: loosen every capacity cap and retune the slack
// penalty, in place (shape preserved, basis stays compatible).
void EscalateRung(LadderLp* l, double scale, double penalty) {
  for (size_t i = 0; i < l->cap_rows.size(); ++i) {
    l->p.SetRhs(l->cap_rows[i], l->p.rhs(l->cap_rows[i]) * scale);
    l->p.SetObj(l->slack_vars[i], penalty);
  }
}

struct Timed {
  double seconds = 0;
  lp::LpSolution sol;
};

// Best-of-`reps` wall time (best, not median: minimizes scheduler noise,
// and every run must produce the same optimum anyway).
Timed TimeSolve(const lp::LpProblem& p, const lp::SimplexOptions& opts,
                const lp::Basis* hint, int reps) {
  Timed out;
  out.seconds = 1e100;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    lp::LpSolution sol = lp::SimplexSolver(opts).Solve(p, hint);
    const double s = timer.Seconds();
    if (s < out.seconds) {
      out.seconds = s;
      out.sol = std::move(sol);
    }
  }
  return out;
}

// Best-of-`reps` wall time for the dual re-solve path.
Timed TimeResolveDual(const lp::LpProblem& p, const lp::SimplexOptions& opts,
                      const lp::Basis& hint, int reps) {
  Timed out;
  out.seconds = 1e100;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    lp::LpSolution sol = lp::SimplexSolver(opts).ResolveDual(p, hint);
    const double s = timer.Seconds();
    if (s < out.seconds) {
      out.seconds = s;
      out.sol = std::move(sol);
    }
  }
  return out;
}

struct ColdRow {
  int rows = 0;
  double dense_s = 0, sparse_s = 0, speedup = 0;
  int pivots = 0;
};

struct WarmRow {
  int rows = 0;
  double cold_s = 0, warm_s = 0, speedup = 0;
  int cold_pivots = 0, warm_pivots = 0;
};

struct DualRow {
  int rows = 0;
  double cold_s = 0, warm_s = 0, dual_s = 0;
  int cold_pivots = 0, warm_pivots = 0, dual_pivots = 0, bound_flips = 0;
  bool dual_used = false;
};

}  // namespace

int Main(int argc, char** argv) {
  const char* env = std::getenv("SLP_BENCH_LP_JSON");
  const std::string json_path =
      argc > 1 ? argv[1] : (env != nullptr ? env : "BENCH_lp.json");

  PrintHeader("LP engine: sparse LU/eta simplex vs dense basis inverse");
  std::printf("%8s %12s %12s %9s %8s\n", "rows", "dense (s)", "sparse (s)",
              "speedup", "pivots");

  std::vector<ColdRow> cold;
  for (int rows : {100, 500, 2000}) {
    Rng rng(100 + rows);
    LadderLp l = MakeLadderLp(rows, rng);
    lp::SimplexOptions sparse_opts;
    lp::SimplexOptions dense_opts;
    dense_opts.use_dense_engine = true;
    const int reps = rows >= 2000 ? 1 : 3;
    const Timed dense = TimeSolve(l.p, dense_opts, nullptr, reps);
    const Timed sparse = TimeSolve(l.p, sparse_opts, nullptr, reps);
    if (dense.sol.status != lp::SolveStatus::kOptimal ||
        sparse.sol.status != lp::SolveStatus::kOptimal ||
        std::abs(dense.sol.objective - sparse.sol.objective) >
            1e-6 * (1 + std::abs(dense.sol.objective))) {
      std::fprintf(stderr, "engines disagree at rows=%d\n", rows);
      return 1;
    }
    ColdRow row;
    row.rows = rows;
    row.dense_s = dense.seconds;
    row.sparse_s = sparse.seconds;
    row.speedup = dense.seconds / sparse.seconds;
    row.pivots = sparse.sol.stats.pivots;
    cold.push_back(row);
    std::printf("%8d %12.4f %12.4f %8.1fx %8d\n", rows, row.dense_s,
                row.sparse_s, row.speedup, row.pivots);
  }

  PrintHeader("β-escalation re-solve: warm (basis hint) vs cold");
  std::printf("%8s %12s %12s %9s %12s %12s\n", "rows", "cold (s)", "warm (s)",
              "speedup", "cold pivots", "warm pivots");

  std::vector<WarmRow> warm;
  for (int rows : {100, 500, 2000}) {
    Rng rng(200 + rows);
    LadderLp l = MakeLadderLp(rows, rng);
    lp::SimplexOptions opts;
    const lp::LpSolution base = lp::SimplexSolver(opts).Solve(l.p);
    if (base.status != lp::SolveStatus::kOptimal) {
      std::fprintf(stderr, "base solve failed at rows=%d\n", rows);
      return 1;
    }
    EscalateRung(&l, 1.3, 5e3);
    const int reps = rows >= 2000 ? 2 : 5;
    const Timed cold_re = TimeSolve(l.p, opts, nullptr, reps);
    const Timed warm_re = TimeSolve(l.p, opts, &base.basis, reps);
    if (cold_re.sol.status != lp::SolveStatus::kOptimal ||
        warm_re.sol.status != lp::SolveStatus::kOptimal ||
        std::abs(cold_re.sol.objective - warm_re.sol.objective) >
            1e-6 * (1 + std::abs(cold_re.sol.objective))) {
      std::fprintf(stderr, "warm/cold disagree at rows=%d\n", rows);
      return 1;
    }
    WarmRow row;
    row.rows = rows;
    row.cold_s = cold_re.seconds;
    row.warm_s = warm_re.seconds;
    row.speedup = cold_re.seconds / warm_re.seconds;
    row.cold_pivots = cold_re.sol.stats.pivots;
    row.warm_pivots = warm_re.sol.stats.pivots;
    warm.push_back(row);
    std::printf("%8d %12.4f %12.4f %8.1fx %12d %12d\n", rows, row.cold_s,
                row.warm_s, row.speedup, row.cold_pivots, row.warm_pivots);
  }

  PrintHeader("Tightened-rung re-solve: dual simplex vs primal warm vs cold");
  std::printf("%8s %10s %10s %10s %12s %12s %12s %8s\n", "rows", "cold (s)",
              "warm (s)", "dual (s)", "cold pivots", "warm pivots",
              "dual pivots", "flips");

  std::vector<DualRow> dual;
  for (int rows : {100, 500, 2000}) {
    Rng rng(300 + rows);
    LadderLp l = MakeLadderLp(rows, rng);
    lp::SimplexOptions opts;
    const lp::LpSolution base = lp::SimplexSolver(opts).Solve(l.p);
    if (base.status != lp::SolveStatus::kOptimal) {
      std::fprintf(stderr, "base solve failed at rows=%d\n", rows);
      return 1;
    }
    // Tighten the caps with the penalty unchanged: a pure rhs edit, so the
    // retained basis stays dual-feasible while its x_B goes out of bounds.
    // The generator's caps sit ~7x above the optimal per-target load, so
    // the scale must cut below that slack for the rung to actually bind.
    EscalateRung(&l, 0.1, 1e4);
    const int reps = rows >= 2000 ? 2 : 5;
    const Timed cold_re = TimeSolve(l.p, opts, nullptr, reps);
    const Timed warm_re = TimeSolve(l.p, opts, &base.basis, reps);
    const Timed dual_re = TimeResolveDual(l.p, opts, base.basis, reps);
    const double obj = cold_re.sol.objective;
    if (cold_re.sol.status != lp::SolveStatus::kOptimal ||
        warm_re.sol.status != lp::SolveStatus::kOptimal ||
        dual_re.sol.status != lp::SolveStatus::kOptimal ||
        std::abs(warm_re.sol.objective - obj) > 1e-6 * (1 + std::abs(obj)) ||
        std::abs(dual_re.sol.objective - obj) > 1e-6 * (1 + std::abs(obj))) {
      std::fprintf(stderr, "dual/warm/cold disagree at rows=%d\n", rows);
      return 1;
    }
    DualRow row;
    row.rows = rows;
    row.cold_s = cold_re.seconds;
    row.warm_s = warm_re.seconds;
    row.dual_s = dual_re.seconds;
    row.cold_pivots = cold_re.sol.stats.pivots;
    row.warm_pivots = warm_re.sol.stats.pivots;
    row.dual_pivots = dual_re.sol.stats.pivots;
    row.bound_flips = dual_re.sol.stats.bound_flips;
    row.dual_used = dual_re.sol.stats.dual_used;
    dual.push_back(row);
    std::printf("%8d %10.4f %10.4f %10.4f %12d %12d %12d %8d%s\n", rows,
                row.cold_s, row.warm_s, row.dual_s, row.cold_pivots,
                row.warm_pivots, row.dual_pivots, row.bound_flips,
                row.dual_used ? "" : "  (fell back to primal)");
  }

  PrintHeader("End-to-end FilterAssign (ladder + warm re-solves inside)");
  const int subs = EnvInt("SLP_SUBS", 800);
  const int brokers = EnvInt("SLP_BROKERS", 20);
  wl::Workload w = wl::GenerateGoogleGroupsVariant(
      wl::Level::kHigh, wl::Level::kLow, subs, brokers, 4);
  core::SaProblem problem = MakeOneLevelProblem(std::move(w), core::SaConfig{});
  const core::Targets targets =
      core::BuildLeafTargets(problem, core::AllSubscribers(problem));
  core::FilterAssignOptions fa_opts;
  const int fa_runs = 3;
  int fa_iterations = 0, fa_lp_calls = 0;
  WallTimer fa_timer;
  for (int r = 0; r < fa_runs; ++r) {
    Rng rng(EnvSeed() + r);
    auto res = core::FilterAssign(problem, targets, fa_opts, rng);
    if (!res.ok()) {
      std::fprintf(stderr, "FilterAssign failed: %s\n",
                   res.status().ToString().c_str());
      return 1;
    }
    fa_iterations += res.value().iterations;
    fa_lp_calls += res.value().lp_calls;
  }
  const double fa_seconds = fa_timer.Seconds();
  const double rounds_per_sec = fa_iterations / fa_seconds;
  std::printf("%d subscribers, %d brokers: %d rounds, %d LP calls in %.3fs "
              "(%.1f rounds/s)\n",
              subs, brokers, fa_iterations, fa_lp_calls, fa_seconds,
              rounds_per_sec);

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"cold_solve\": [\n");
  for (size_t i = 0; i < cold.size(); ++i) {
    std::fprintf(f,
                 "    {\"rows\": %d, \"dense_seconds\": %.6f, "
                 "\"sparse_seconds\": %.6f, \"speedup\": %.2f, "
                 "\"pivots\": %d}%s\n",
                 cold[i].rows, cold[i].dense_s, cold[i].sparse_s,
                 cold[i].speedup, cold[i].pivots,
                 i + 1 < cold.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"escalation_resolve\": [\n");
  for (size_t i = 0; i < warm.size(); ++i) {
    std::fprintf(f,
                 "    {\"rows\": %d, \"cold_seconds\": %.6f, "
                 "\"warm_seconds\": %.6f, \"speedup\": %.2f, "
                 "\"cold_pivots\": %d, \"warm_pivots\": %d}%s\n",
                 warm[i].rows, warm[i].cold_s, warm[i].warm_s, warm[i].speedup,
                 warm[i].cold_pivots, warm[i].warm_pivots,
                 i + 1 < warm.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"dual_resolve\": [\n");
  for (size_t i = 0; i < dual.size(); ++i) {
    std::fprintf(f,
                 "    {\"rows\": %d, \"cold_seconds\": %.6f, "
                 "\"warm_seconds\": %.6f, \"dual_seconds\": %.6f, "
                 "\"cold_pivots\": %d, \"warm_pivots\": %d, "
                 "\"dual_pivots\": %d, \"bound_flips\": %d, "
                 "\"dual_used\": %s}%s\n",
                 dual[i].rows, dual[i].cold_s, dual[i].warm_s, dual[i].dual_s,
                 dual[i].cold_pivots, dual[i].warm_pivots, dual[i].dual_pivots,
                 dual[i].bound_flips, dual[i].dual_used ? "true" : "false",
                 i + 1 < dual.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"filter_assign\": {\"subscribers\": %d, "
               "\"brokers\": %d, \"runs\": %d, \"rounds\": %d, "
               "\"lp_calls\": %d, \"seconds\": %.3f, "
               "\"rounds_per_sec\": %.2f}\n}\n",
               subs, brokers, fa_runs, fa_iterations, fa_lp_calls, fa_seconds,
               rounds_per_sec);
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace slp::bench

int main(int argc, char** argv) { return slp::bench::Main(argc, argv); }
