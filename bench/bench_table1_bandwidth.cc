// Table I — bandwidth comparison on workload set #1 (one-level network):
// the LP fractional solution (the yardstick lower bound) vs SLP1, Gr*, Gr
// for each of the four (IS, BI) workloads.
//
// Expected shape (paper): SLP1 and Gr* land within a small factor
// (paper: 1.3—2.7x) of the fractional solution; Gr is consistently worse.

#include "bench/bench_util.h"

int main() {
  using namespace slp;
  using namespace slp::bench;

  const int subs = EnvInt("SLP_SUBS", 3000);
  const int brokers = EnvInt("SLP_BROKERS", 20);
  const uint64_t seed = EnvSeed();
  core::SaConfig config;

  PrintHeader("Table I: bandwidth comparison (workload set #1), " +
              std::to_string(subs) + " subscribers, " +
              std::to_string(brokers) + " brokers");
  std::printf("%-14s %12s %10s %10s %10s %12s %12s\n", "workload",
              "fractional", "SLP1", "Gr*", "Gr", "SLP1/frac", "Gr*/frac");

  for (const auto& [wname, levels] : Set1Variants()) {
    wl::Workload w = wl::GenerateGoogleGroupsVariant(
        levels.first, levels.second, subs, brokers, seed);
    core::SaProblem problem = MakeOneLevelProblem(std::move(w), config);

    RunResult slp1 = RunAlgorithm("SLP1", &RunSlp1Adapter, problem, seed);
    RunResult gr_star = RunAlgorithm("Gr*", &core::RunGrStar, problem, seed);
    RunResult gr = RunAlgorithm("Gr", &core::RunGr, problem, seed);
    const double frac = slp1.solution.fractional_lower_bound;

    std::printf("%-14s %12.4f %10.4f %10.4f %10.4f %12.2f %12.2f\n",
                wname.c_str(), frac, slp1.metrics.total_bandwidth,
                gr_star.metrics.total_bandwidth, gr.metrics.total_bandwidth,
                frac > 0 ? slp1.metrics.total_bandwidth / frac : 0.0,
                frac > 0 ? gr_star.metrics.total_bandwidth / frac : 0.0);
  }
  std::printf(
      "\nNote: the fractional solution is the optimal LP objective over the\n"
      "sampled coreset and candidate rectangles (Section IV-D); ratios in\n"
      "the paper fall between 1.3 and 2.7 for SLP1/Gr*.\n");
  return 0;
}
