// Figure 8 — overall comparison on a multi-level network (workload set #1)
// under the paper's tight and loose latency settings:
//   tight: maxdelay 0.2, β/βmax = 7/8  (latency leaves few broker choices);
//   loose: maxdelay 1.0, β/βmax = 1.3/1.5.
//
// Expected shape (paper): event-space-blind algorithms blow up bandwidth;
// Gr¬l blows up delay; under tight latency Gr and Gr* fail the load
// constraints while SLP satisfies them; under loose latency Gr*/Gr are
// comparable to SLP.

#include <map>

#include "bench/bench_util.h"

int main() {
  using namespace slp;
  using namespace slp::bench;

  const int subs = EnvInt("SLP_SUBS", 3000);
  const int brokers = EnvInt("SLP_BROKERS", 60);
  const int out_degree = EnvInt("SLP_OUT_DEGREE", 15);
  const uint64_t seed = EnvSeed();

  struct Setting {
    const char* name;
    core::SaConfig config;
  };
  std::vector<Setting> settings(2);
  settings[0].name = "tight";
  settings[0].config.max_delay = 0.2;
  settings[1].name = "loose";
  settings[1].config.max_delay = 1.0;

  // The paper picks β relative to the minimum achievable lbf (≈6 in its
  // tight setting, hence β/βmax = 7/8). Calibrate the same way here, on the
  // baseline (IS:H, BI:L) workload per setting.
  for (Setting& setting : settings) {
    wl::Workload w = wl::GenerateGoogleGroupsVariant(
        wl::Level::kHigh, wl::Level::kLow, subs, brokers, seed);
    core::SaProblem probe =
        MakeMultiLevelProblem(std::move(w), setting.config, out_degree, seed);
    const double floor_lbf = std::max(1.0, MinAchievableLbf(probe, seed));
    setting.config.beta = 1.2 * floor_lbf;
    setting.config.beta_max = 1.4 * floor_lbf;
    std::printf("[calibration] %s: min achievable lbf=%.2f -> beta=%.2f, "
                "beta_max=%.2f\n",
                setting.name, floor_lbf, setting.config.beta,
                setting.config.beta_max);
  }

  for (const Setting& setting : settings) {
    PrintHeader(std::string("Figure 8(") +
                (setting.name[0] == 't' ? "a" : "b") + "): multi-level, " +
                setting.name + " latency setting (set #1, averaged over 4 "
                "workloads); " + std::to_string(subs) + " subscribers, " +
                std::to_string(brokers) + " brokers, out-degree <= " +
                std::to_string(out_degree));
    struct Acc {
      double bandwidth = 0, rms = 0, stdev = 0, lbf = 0;
      int load_ok = 0;
    };
    std::map<std::string, Acc> acc;
    std::vector<std::string> order;
    const auto variants = Set1Variants();
    for (const auto& [wname, levels] : variants) {
      wl::Workload w = wl::GenerateGoogleGroupsVariant(
          levels.first, levels.second, subs, brokers, seed);
      core::SaProblem problem = MakeMultiLevelProblem(
          std::move(w), setting.config, out_degree, seed);
      for (const auto& [name, algo] : AllAlgorithms(/*multi_level=*/true)) {
        RunResult r = RunAlgorithm(name, algo, problem, seed);
        if (acc.find(name) == acc.end()) order.push_back(name);
        Acc& a = acc[name];
        a.bandwidth += r.metrics.total_bandwidth / variants.size();
        a.rms += r.metrics.rms_delay / variants.size();
        a.stdev += r.metrics.load_stdev / variants.size();
        a.lbf += r.metrics.lbf / variants.size();
        a.load_ok += r.solution.load_feasible;
      }
    }
    std::printf("%-10s %12s %10s %12s %6s %9s\n", "algorithm", "bandwidth",
                "rms_delay", "stdev_load", "lbf", "load_ok/4");
    for (const std::string& name : order) {
      const Acc& a = acc[name];
      std::printf("%-10s %12.4f %10.3f %12.1f %6.2f %9d\n", name.c_str(),
                  a.bandwidth, a.rms, a.stdev, a.lbf, a.load_ok);
    }
  }
  return 0;
}
