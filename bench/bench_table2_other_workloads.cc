// Table II — bandwidth comparison on workload sets #2 (RSS) and #3 (grid):
// the LP fractional solution vs SLP1, Gr*, and Gr¬l (one-level network).
//
// Expected shape (paper): on set #2 Gr* can even undercut the fractional
// solution (the bound is over the sampled candidate set), while Gr¬l's
// bandwidth is absurdly low because it ignores latency — too good to be a
// meaningful yardstick. On set #3 all three land close together.

#include "bench/bench_util.h"

int main() {
  using namespace slp;
  using namespace slp::bench;

  const int subs = EnvInt("SLP_SUBS", 3000);
  const int brokers = EnvInt("SLP_BROKERS", 20);
  const uint64_t seed = EnvSeed();

  PrintHeader("Table II: bandwidth comparison (workload sets #2 and #3), " +
              std::to_string(subs) + " subscribers, " +
              std::to_string(brokers) + " brokers");
  std::printf("%-10s %12s %10s %10s %10s\n", "set", "fractional", "SLP1",
              "Gr*", "Gr-l");

  // Set #2: RSS. Paper settings: β=2.3, βmax=2.5 (subscriber locations are
  // skewed onto a few network points).
  {
    wl::RssParams params;
    params.num_subscribers = subs;
    params.num_brokers = brokers;
    params.seed = seed;
    core::SaConfig config;
    config.beta = 2.3;
    config.beta_max = 2.5;
    core::SaProblem problem =
        MakeOneLevelProblem(wl::GenerateRss(params), config);
    RunResult slp1 = RunAlgorithm("SLP1", &RunSlp1Adapter, problem, seed);
    RunResult gr_star = RunAlgorithm("Gr*", &core::RunGrStar, problem, seed);
    RunResult gr_nl = RunAlgorithm("Gr-l", &core::RunGrNoLatency, problem, seed);
    std::printf("%-10s %12.4f %10.4f %10.4f %10.4f\n", "#2 (rss)",
                slp1.solution.fractional_lower_bound,
                slp1.metrics.total_bandwidth, gr_star.metrics.total_bandwidth,
                gr_nl.metrics.total_bandwidth);
  }

  // Set #3: grid. Paper settings: β=1.3, βmax=1.5 (locations uniform).
  {
    wl::GridParams params;
    params.num_subscribers = subs;
    params.num_brokers = brokers;
    params.seed = seed;
    core::SaConfig config;
    config.beta = 1.3;
    config.beta_max = 1.5;
    core::SaProblem problem =
        MakeOneLevelProblem(wl::GenerateGrid(params), config);
    RunResult slp1 = RunAlgorithm("SLP1", &RunSlp1Adapter, problem, seed);
    RunResult gr_star = RunAlgorithm("Gr*", &core::RunGrStar, problem, seed);
    RunResult gr_nl = RunAlgorithm("Gr-l", &core::RunGrNoLatency, problem, seed);
    std::printf("%-10s %12.4f %10.4f %10.4f %10.4f\n", "#3 (grid)",
                slp1.solution.fractional_lower_bound,
                slp1.metrics.total_bandwidth, gr_star.metrics.total_bandwidth,
                gr_nl.metrics.total_bandwidth);
  }
  return 0;
}
