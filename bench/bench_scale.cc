// Million-subscriber scale benchmark (DESIGN.md §12): wall time and memory
// of the SLP pipeline at 100k and 1M subscribers on the grid workload.
//
// Three comparisons per size:
//  * candidate-table build — the historical nested vector<vector<...>>
//    layout (reimplemented here as the baseline) vs the flat CSR build,
//    serial and sharded, with an in-run differential (nested == CSR) and
//    a bit-identity check (sharded CSR == serial CSR);
//  * end-to-end SLP over the multi-level tree (paper out-degree 15) —
//    serial vs sharded, asserted bit-identical in-run;
//  * dynamic arrivals — sequential Add vs one AddBatch, asserted to land
//    identical loads with fewer escalation-rung scans.
//
// Memory is reported two ways: exact bytes held by each candidate layout
// (capacity accounting, deterministic) and the process peak RSS
// (getrusage ru_maxrss, monotone across the run — the 1M row's value is
// the honest pipeline peak).
//
// Scales: SLP_SCALE_MAX caps the largest size (default 1000000);
// SLP_BROKERS (default 100), SLP_SHARDS (default 8), SLP_SEED as usual.
// Prints a table and writes BENCH_scale.json (argv[1] or
// SLP_BENCH_SCALE_JSON; default ./BENCH_scale.json).

#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/candidates.h"
#include "src/core/dynamic.h"

namespace slp::bench {
namespace {

long PeakRssKb() {
  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;  // kilobytes on Linux
}

// The pre-CSR candidate layout: one heap-allocated row pair per
// subscriber. Kept as the benchmark baseline so the CSR win stays
// measured, not remembered.
struct NestedTargets {
  std::vector<std::vector<int>> candidates;
  std::vector<std::vector<double>> latency;
};

NestedTargets BuildNestedLeafTargets(const core::SaProblem& problem) {
  const int m = problem.num_subscribers();
  NestedTargets t;
  t.candidates.resize(m);
  t.latency.resize(m);
  std::vector<std::pair<double, int>> row;
  for (int j = 0; j < m; ++j) {
    row.clear();
    const double bound = problem.latency_bound(j);
    for (int i = 0; i < problem.num_leaves(); ++i) {
      const double lat = problem.AssignmentLatency(j, problem.leaf_node(i));
      if (lat <= bound + 1e-12) row.emplace_back(lat, i);
    }
    std::sort(row.begin(), row.end());
    t.candidates[j].reserve(row.size());
    t.latency[j].reserve(row.size());
    for (const auto& [lat, i] : row) {
      t.candidates[j].push_back(i);
      t.latency[j].push_back(lat);
    }
  }
  return t;
}

size_t NestedBytes(const NestedTargets& t) {
  size_t bytes = t.candidates.capacity() * sizeof(std::vector<int>) +
                 t.latency.capacity() * sizeof(std::vector<double>);
  for (const auto& r : t.candidates) bytes += r.capacity() * sizeof(int);
  for (const auto& r : t.latency) bytes += r.capacity() * sizeof(double);
  return bytes;
}

// Touched bytes — what the layout actually keeps resident. The CSR build's
// probe reserve can leave a few percent of slack capacity past size(), but
// that tail is never written and so never faulted in: it occupies address
// space, not memory. The reserved (capacity) figure is reported separately
// as csr_reserved_bytes so the slack stays visible.
size_t CsrBytes(const core::Targets& t) {
  return t.cand_offsets.size() * sizeof(int64_t) +
         t.cand_targets.size() * sizeof(int32_t) +
         t.cand_latency.size() * sizeof(double);
}

size_t CsrReservedBytes(const core::Targets& t) {
  return t.cand_offsets.capacity() * sizeof(int64_t) +
         t.cand_targets.capacity() * sizeof(int32_t) +
         t.cand_latency.capacity() * sizeof(double);
}

bool NestedEqualsCsr(const NestedTargets& nested, const core::Targets& csr) {
  if (static_cast<int>(nested.candidates.size()) != csr.num_rows()) {
    return false;
  }
  for (int r = 0; r < csr.num_rows(); ++r) {
    const core::CandidateRow row = csr.candidates(r);
    const auto& cand = nested.candidates[r];
    if (static_cast<int>(cand.size()) != row.size()) return false;
    for (int k = 0; k < row.size(); ++k) {
      if (cand[k] != row[k] || nested.latency[r][k] != row.latency(k)) {
        return false;
      }
    }
  }
  return true;
}

bool SolutionsIdentical(const core::SaSolution& a, const core::SaSolution& b) {
  if (a.assignment != b.assignment) return false;
  if (a.load_feasible != b.load_feasible) return false;
  if (a.filters.size() != b.filters.size()) return false;
  for (size_t v = 0; v < a.filters.size(); ++v) {
    if (!(a.filters[v].rects() == b.filters[v].rects())) return false;
  }
  return a.fractional_lower_bound == b.fractional_lower_bound;
}

struct Row {
  int subscribers = 0;
  int brokers = 0;
  double gen_seconds = 0;
  double nested_build_seconds = 0;
  double csr_build_seconds = 0;
  double csr_sharded_build_seconds = 0;
  size_t nested_bytes = 0;
  size_t csr_bytes = 0;
  size_t csr_reserved_bytes = 0;
  bool nested_csr_identical = false;
  bool csr_sharded_identical = false;
  double slp_serial_seconds = 0;
  double slp_sharded_seconds = 0;
  bool slp_sharded_identical = false;
  double add_seq_seconds = 0;
  double add_batch_seconds = 0;
  int64_t add_seq_scans = 0;
  int64_t add_batch_scans = 0;
  bool add_batch_identical = false;
  long peak_rss_kb = 0;
};

Row RunSize(int m, int brokers, int shards, uint64_t seed) {
  Row row;
  row.subscribers = m;
  row.brokers = brokers;

  wl::GridParams params;
  params.num_subscribers = m;
  params.num_brokers = brokers;
  params.seed = seed;
  WallTimer gen_timer;
  const wl::Workload w = wl::GenerateGrid(params);
  row.gen_seconds = gen_timer.Seconds();

  core::SaConfig config;
  config.max_delay = 1.0;

  // ---- Candidate-table build: nested baseline vs CSR ----
  {
    core::SaProblem problem = MakeOneLevelProblem(w, config);
    const std::vector<int> subs = core::AllSubscribers(problem);

    core::Targets csr;
    {
      WallTimer nested_timer;
      const NestedTargets nested = BuildNestedLeafTargets(problem);
      row.nested_build_seconds = nested_timer.Seconds();
      row.nested_bytes = NestedBytes(nested);

      WallTimer csr_timer;
      csr = core::BuildLeafTargets(problem, subs, /*num_shards=*/1);
      row.csr_build_seconds = csr_timer.Seconds();
      row.csr_bytes = CsrBytes(csr);
      row.csr_reserved_bytes = CsrReservedBytes(csr);
      row.nested_csr_identical = NestedEqualsCsr(nested, csr);
      // The nested baseline dies here: on this class of VM, first-touch of
      // fresh pages gets sharply more expensive as net RSS grows, so the
      // sharded build below should not be charged for ~1GB of dead
      // baseline the process is still holding.
    }

    WallTimer sharded_timer;
    const core::Targets sharded = core::BuildLeafTargets(problem, subs, shards);
    row.csr_sharded_build_seconds = sharded_timer.Seconds();
    row.csr_sharded_identical = csr.cand_offsets == sharded.cand_offsets &&
                                csr.cand_targets == sharded.cand_targets &&
                                csr.cand_latency == sharded.cand_latency;
  }

  // ---- End-to-end SLP: serial vs sharded ----
  {
    const core::SaProblem problem = MakeMultiLevelProblem(w, config, 15, seed);

    core::SlpOptions serial;
    serial.num_threads = 1;
    Rng rng_serial(seed);
    WallTimer serial_timer;
    auto a = core::RunSlp(problem, serial, rng_serial);
    row.slp_serial_seconds = serial_timer.Seconds();

    core::SlpOptions sharded;
    sharded.num_threads = 0;
    sharded.num_shards = shards;
    Rng rng_sharded(seed);
    WallTimer sharded_timer;
    auto b = core::RunSlp(problem, sharded, rng_sharded);
    row.slp_sharded_seconds = sharded_timer.Seconds();

    row.slp_sharded_identical =
        a.ok() && b.ok() && SolutionsIdentical(a.value(), b.value());
    if (!a.ok() || !b.ok()) {
      std::fprintf(stderr, "SLP failed at m=%d: %s\n", m,
                   (a.ok() ? b : a).status().ToString().c_str());
    }
  }

  // ---- Dynamic arrivals: sequential Add vs AddBatch ----
  {
    net::BrokerTree tree =
        net::BuildOneLevelTree(w.publisher, w.broker_locations);
    core::SaConfig dyn_config;
    dyn_config.max_delay = 3.0;
    // Caps below the arrival count so the escalation ladder is exercised.
    core::DynamicAssigner seq(tree, dyn_config, m / 2);
    core::DynamicAssigner bat(std::move(tree), dyn_config, m / 2);

    WallTimer seq_timer;
    for (const auto& s : w.subscribers) (void)seq.Add(s);
    row.add_seq_seconds = seq_timer.Seconds();
    row.add_seq_scans = seq.add_stats().escalation_scans;

    WallTimer bat_timer;
    auto handles = bat.AddBatch(w.subscribers);
    row.add_batch_seconds = bat_timer.Seconds();
    row.add_batch_scans = bat.add_stats().escalation_scans;
    row.add_batch_identical = handles.ok() && seq.loads() == bat.loads() &&
                              seq.population() == bat.population();
  }

  row.peak_rss_kb = PeakRssKb();
  return row;
}

int Main(int argc, char** argv) {
  const char* env = std::getenv("SLP_BENCH_SCALE_JSON");
  const std::string json_path =
      argc > 1 ? argv[1] : (env != nullptr ? env : "BENCH_scale.json");

  const int max_subs = EnvInt("SLP_SCALE_MAX", 1000000);
  const int brokers = EnvInt("SLP_BROKERS", 100);
  const int shards = EnvInt("SLP_SHARDS", 8);
  const uint64_t seed = EnvSeed();

  std::vector<int> sizes = {100000, 1000000};
  sizes.erase(std::remove_if(sizes.begin(), sizes.end(),
                             [&](int s) { return s > max_subs; }),
              sizes.end());
  if (sizes.empty()) sizes.push_back(max_subs);

  PrintHeader("Scale pipeline (grid workload, " + std::to_string(brokers) +
              " brokers, " + std::to_string(shards) + " shards)");

  std::vector<Row> rows;
  for (int m : sizes) rows.push_back(RunSize(m, brokers, shards, seed));

  std::printf("%-10s %12s %12s %12s %10s %10s %12s %12s %12s %12s %10s\n",
              "subs", "nested(s)", "csr(s)", "csr-shard(s)", "nested-MB",
              "csr-MB", "slp-ser(s)", "slp-shard(s)", "add-seq(s)",
              "add-batch(s)", "peakRSS-MB");
  for (const Row& r : rows) {
    std::printf(
        "%-10d %12.3f %12.3f %12.3f %10.1f %10.1f %12.2f %12.2f %12.2f "
        "%12.2f %10.1f\n",
        r.subscribers, r.nested_build_seconds, r.csr_build_seconds,
        r.csr_sharded_build_seconds, r.nested_bytes / 1048576.0,
        r.csr_bytes / 1048576.0, r.slp_serial_seconds, r.slp_sharded_seconds,
        r.add_seq_seconds, r.add_batch_seconds, r.peak_rss_kb / 1024.0);
  }

  bool all_checks = true;
  for (const Row& r : rows) {
    all_checks &= r.nested_csr_identical && r.csr_sharded_identical &&
                  r.slp_sharded_identical && r.add_batch_identical;
    std::printf(
        "m=%d checks: nested==csr %s, sharded-csr identical %s, "
        "sharded-slp identical %s, addbatch==add %s "
        "(scans %lld -> %lld)\n",
        r.subscribers, r.nested_csr_identical ? "ok" : "FAIL",
        r.csr_sharded_identical ? "ok" : "FAIL",
        r.slp_sharded_identical ? "ok" : "FAIL",
        r.add_batch_identical ? "ok" : "FAIL",
        static_cast<long long>(r.add_seq_scans),
        static_cast<long long>(r.add_batch_scans));
  }

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"workload\": \"grid\",\n");
  std::fprintf(f, "  \"brokers\": %d,\n  \"num_shards\": %d,\n", brokers,
               shards);
  std::fprintf(f, "  \"rows\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"subscribers\": %d,\n", r.subscribers);
    std::fprintf(f, "      \"gen_seconds\": %.3f,\n", r.gen_seconds);
    std::fprintf(f, "      \"nested_build_seconds\": %.3f,\n",
                 r.nested_build_seconds);
    std::fprintf(f, "      \"csr_build_seconds\": %.3f,\n",
                 r.csr_build_seconds);
    std::fprintf(f, "      \"csr_sharded_build_seconds\": %.3f,\n",
                 r.csr_sharded_build_seconds);
    std::fprintf(f, "      \"nested_bytes\": %zu,\n", r.nested_bytes);
    std::fprintf(f, "      \"csr_bytes\": %zu,\n", r.csr_bytes);
    std::fprintf(f, "      \"csr_reserved_bytes\": %zu,\n",
                 r.csr_reserved_bytes);
    std::fprintf(f, "      \"nested_csr_identical\": %s,\n",
                 r.nested_csr_identical ? "true" : "false");
    std::fprintf(f, "      \"csr_sharded_identical\": %s,\n",
                 r.csr_sharded_identical ? "true" : "false");
    std::fprintf(f, "      \"slp_serial_seconds\": %.2f,\n",
                 r.slp_serial_seconds);
    std::fprintf(f, "      \"slp_sharded_seconds\": %.2f,\n",
                 r.slp_sharded_seconds);
    std::fprintf(f, "      \"slp_sharded_identical\": %s,\n",
                 r.slp_sharded_identical ? "true" : "false");
    std::fprintf(f, "      \"add_seq_seconds\": %.2f,\n", r.add_seq_seconds);
    std::fprintf(f, "      \"add_batch_seconds\": %.2f,\n",
                 r.add_batch_seconds);
    std::fprintf(f, "      \"add_seq_escalation_scans\": %lld,\n",
                 static_cast<long long>(r.add_seq_scans));
    std::fprintf(f, "      \"add_batch_escalation_scans\": %lld,\n",
                 static_cast<long long>(r.add_batch_scans));
    std::fprintf(f, "      \"add_batch_identical\": %s,\n",
                 r.add_batch_identical ? "true" : "false");
    std::fprintf(f, "      \"peak_rss_kb\": %ld\n", r.peak_rss_kb);
    std::fprintf(f, "    }%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return all_checks ? 0 : 1;
}

}  // namespace
}  // namespace slp::bench

int main(int argc, char** argv) { return slp::bench::Main(argc, argv); }
