// Aggregation-layer benchmark (DESIGN.md §14): what the subsumption layer
// buys on coverable workloads.
//
// Two measurements:
//  * SLP end-to-end — direct RunSlp on the full problem vs AggregateSolve
//    (aggregate + compressed solve + expand) on the SAME workload, across
//    a sweep of coverable fractions at the small size and at the paper's
//    headline fraction (0.6 coverable, >= 50%) at the large size. Reports
//    wall time, realized compression ratio, Q(T) of both solutions (the
//    expansion transfers filters verbatim, so aggregated Q(T) is the
//    compressed run's), and process peak RSS. The aggregated run goes
//    FIRST so its peak-RSS figure is not polluted by the direct solve
//    (getrusage peaks are monotone across the process).
//  * Dynamic arrivals — the same arrival stream through a plain assigner
//    and one with the online subsumption fast path enabled: wall time,
//    arrivals/s, and how many admissions the index probe carried.
//
// Scales: SLP_AGG_MAX caps the largest size (default 1000000);
// SLP_BROKERS (default 64), SLP_SEED as usual. Prints tables and writes
// BENCH_agg.json (argv[1] or SLP_BENCH_AGG_JSON; default ./BENCH_agg.json).

#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/agg/aggregation.h"
#include "src/core/dynamic.h"
#include "src/workload/coverable.h"

namespace slp::bench {
namespace {

long PeakRssKb() {
  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;  // kilobytes on Linux
}

wl::Workload CoverableGrid(int m, int brokers, double fraction,
                           uint64_t seed) {
  wl::GridParams params;
  params.num_subscribers = m;
  params.num_brokers = brokers;
  params.seed = seed;
  wl::Workload w = wl::GenerateGrid(params);
  if (fraction > 0) {
    wl::CoverableOptions cover;
    cover.fraction = fraction;
    cover.dup_fraction = 0.6;
    Rng rng(seed * 7919 + 1);
    wl::MakeCoverable(&w, cover, rng);
  }
  return w;
}

wl::Workload CoverableGg(int m, int brokers, double fraction, uint64_t seed) {
  wl::Workload w = wl::GenerateGoogleGroupsVariant(
      wl::Level::kHigh, wl::Level::kLow, m, brokers, seed);
  if (fraction > 0) {
    wl::CoverableOptions cover;
    cover.fraction = fraction;
    cover.dup_fraction = 0.6;
    Rng rng(seed * 7919 + 2);
    wl::MakeCoverable(&w, cover, rng);
  }
  return w;
}

struct SolveRow {
  std::string workload;
  int subscribers = 0;
  double coverable_fraction = 0;
  double compression_ratio = 1;
  int aggregates = 0;
  double agg_seconds = 0;     // aggregate + compressed solve + expand
  double direct_seconds = 0;  // RunSlp on the full problem
  double agg_qt = 0;
  double direct_qt = 0;
  bool agg_latency_feasible = false;
  bool direct_latency_feasible = false;
  // Honest solve accounting. The dup-heavy coverable workloads make the
  // sampled LPs highly degenerate; at 1M a single solve can hit the
  // simplex pivot cap, which FilterAssign degrades to its budget-exhausted
  // best-effort path (coverage from Complete(), load from max-flow) rather
  // than failing. These flags say when a pipeline took that path.
  int agg_lp_calls = 0;
  int direct_lp_calls = 0;
  bool agg_budget_exhausted = false;
  bool direct_budget_exhausted = false;
  bool agg_cert_infeasible = false;  // pre-solve max-flow certificate fired
  int agg_repair_moves = 0;          // RepairExpandedLoad moves
  long agg_peak_rss_kb = 0;
  long peak_rss_kb = 0;
};

SolveRow RunSolve(const std::string& name, const wl::Workload& w,
                  double fraction, uint64_t seed) {
  SolveRow row;
  row.workload = name;
  row.subscribers = static_cast<int>(w.subscribers.size());
  row.coverable_fraction = fraction;

  core::SaConfig config;
  config.max_delay = 1.0;
  const core::SaProblem problem = MakeOneLevelProblem(w, config);

  // Both pipelines run with stock options — no pivot-cap tuning. On the
  // 1M dup-heavy instances a single sampled LP can be too degenerate to
  // finish within the cap; FilterAssign then degrades to its
  // budget-exhausted path instead of erroring, and the *_budget_exhausted
  // flags below record which rows took it.

  // Aggregated pipeline first (honest peak RSS; see header comment).
  {
    agg::AggregateSolveOptions options;
    // kTriangle keeps the pairwise check O(1); at these sizes the exact
    // rule's per-leaf scans would dominate the very cost being removed.
    options.agg.compat = agg::CompatRule::kTriangle;
    agg::AggregateSolveStats stats;
    Rng rng(seed);
    WallTimer timer;
    auto result = agg::AggregateSolve(problem, options, rng, &stats);
    row.agg_seconds = timer.Seconds();
    row.agg_peak_rss_kb = PeakRssKb();
    if (!result.ok()) {
      std::fprintf(stderr, "AggregateSolve failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    row.compression_ratio = stats.compression_ratio;
    row.aggregates = stats.aggregates;
    row.agg_lp_calls = stats.slp.lp_calls;
    row.agg_budget_exhausted = stats.slp.any_budget_exhausted;
    row.agg_cert_infeasible = stats.compressed_load_infeasible;
    row.agg_repair_moves = stats.repair_moves;
    row.agg_qt =
        core::ComputeMetrics(problem, result.value()).total_bandwidth;
    row.agg_latency_feasible = result.value().latency_feasible;
  }

  {
    core::SlpStats stats;
    Rng rng(seed);
    WallTimer timer;
    auto result = core::RunSlp(problem, core::SlpOptions{}, rng, &stats);
    row.direct_seconds = timer.Seconds();
    if (!result.ok()) {
      std::fprintf(stderr, "RunSlp failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    row.direct_lp_calls = stats.lp_calls;
    row.direct_budget_exhausted = stats.any_budget_exhausted;
    row.direct_qt =
        core::ComputeMetrics(problem, result.value()).total_bandwidth;
    row.direct_latency_feasible = result.value().latency_feasible;
  }

  row.peak_rss_kb = PeakRssKb();
  return row;
}

struct DynRow {
  std::string workload;
  int subscribers = 0;
  double plain_seconds = 0;
  double agg_seconds = 0;
  int64_t subsumed_admissions = 0;
  bool same_population = false;
};

DynRow RunDynamic(const std::string& name, const wl::Workload& w,
                  uint64_t seed) {
  (void)seed;
  DynRow row;
  row.workload = name;
  row.subscribers = static_cast<int>(w.subscribers.size());

  net::BrokerTree tree =
      net::BuildOneLevelTree(w.publisher, w.broker_locations);
  core::SaConfig config;
  config.max_delay = 3.0;
  core::DynamicAssigner plain(tree, config, row.subscribers);
  core::DynamicAssigner agg_on(std::move(tree), config, row.subscribers);
  agg_on.EnableAggregation();

  {
    WallTimer timer;
    for (const auto& s : w.subscribers) (void)plain.Add(s);
    row.plain_seconds = timer.Seconds();
  }
  {
    WallTimer timer;
    for (const auto& s : w.subscribers) (void)agg_on.Add(s);
    row.agg_seconds = timer.Seconds();
  }
  row.subsumed_admissions = agg_on.add_stats().subsumed_admissions;
  row.same_population = plain.population() == agg_on.population();
  return row;
}

int Main(int argc, char** argv) {
  const char* env = std::getenv("SLP_BENCH_AGG_JSON");
  const std::string json_path =
      argc > 1 ? argv[1] : (env != nullptr ? env : "BENCH_agg.json");

  const int max_subs = EnvInt("SLP_AGG_MAX", 1000000);
  const int brokers = EnvInt("SLP_BROKERS", 64);
  const uint64_t seed = EnvSeed();
  const int small = std::min(100000, max_subs);

  PrintHeader("Aggregation layer (grid + GG coverable workloads, " +
              std::to_string(brokers) + " brokers)");

  std::vector<SolveRow> rows;
  // Sweep the knob that creates coverage at the small size...
  for (double fraction : {0.0, 0.4, 0.6, 0.8}) {
    rows.push_back(RunSolve("grid", CoverableGrid(small, brokers, fraction, seed),
                            fraction, seed));
  }
  rows.push_back(RunSolve("gg", CoverableGg(small, brokers, 0.6, seed), 0.6,
                          seed));
  // ...and the headline >= 50%-coverable comparison at the large size.
  if (max_subs > small) {
    rows.push_back(RunSolve(
        "grid", CoverableGrid(max_subs, brokers, 0.6, seed), 0.6, seed));
    rows.push_back(RunSolve("gg", CoverableGg(max_subs, brokers, 0.6, seed),
                            0.6, seed));
  }

  std::printf("%-6s %-9s %6s %8s %10s %10s %8s %10s %10s %7s %7s %10s\n",
              "wl", "subs", "cover", "ratio", "agg(s)", "direct(s)",
              "speedup", "agg-QT", "direct-QT", "agg-lp", "dir-lp",
              "peakRSS-MB");
  for (const SolveRow& r : rows) {
    // An 'x' suffix on an lp-call count marks a budget-exhausted
    // (best-effort) run of that pipeline.
    std::printf(
        "%-6s %-9d %6.2f %8.2f %10.2f %10.2f %8.2f %10.4f %10.4f %6d%c %6d%c "
        "%10.1f\n",
        r.workload.c_str(), r.subscribers, r.coverable_fraction,
        r.compression_ratio, r.agg_seconds, r.direct_seconds,
        r.agg_seconds > 0 ? r.direct_seconds / r.agg_seconds : 0, r.agg_qt,
        r.direct_qt, r.agg_lp_calls, r.agg_budget_exhausted ? 'x' : ' ',
        r.direct_lp_calls, r.direct_budget_exhausted ? 'x' : ' ',
        r.peak_rss_kb / 1024.0);
  }

  std::vector<DynRow> dyn_rows;
  dyn_rows.push_back(
      RunDynamic("grid", CoverableGrid(small, brokers, 0.6, seed), seed));
  if (max_subs > small) {
    dyn_rows.push_back(RunDynamic(
        "grid", CoverableGrid(max_subs, brokers, 0.6, seed), seed));
  }
  std::printf("\n%-6s %-9s %10s %10s %12s %14s %14s\n", "wl", "subs",
              "plain(s)", "agg(s)", "subsumed", "plain-adds/s",
              "agg-adds/s");
  for (const DynRow& r : dyn_rows) {
    std::printf("%-6s %-9d %10.2f %10.2f %12lld %14.0f %14.0f\n",
                r.workload.c_str(), r.subscribers, r.plain_seconds,
                r.agg_seconds,
                static_cast<long long>(r.subsumed_admissions),
                r.plain_seconds > 0 ? r.subscribers / r.plain_seconds : 0,
                r.agg_seconds > 0 ? r.subscribers / r.agg_seconds : 0);
  }

  bool ok = true;
  for (const DynRow& r : dyn_rows) ok &= r.same_population;
  for (const SolveRow& r : rows) {
    ok &= r.agg_latency_feasible == r.direct_latency_feasible;
  }

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"brokers\": %d,\n  \"solve_rows\": [\n", brokers);
  for (size_t i = 0; i < rows.size(); ++i) {
    const SolveRow& r = rows[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"workload\": \"%s\",\n", r.workload.c_str());
    std::fprintf(f, "      \"subscribers\": %d,\n", r.subscribers);
    std::fprintf(f, "      \"coverable_fraction\": %.2f,\n",
                 r.coverable_fraction);
    std::fprintf(f, "      \"compression_ratio\": %.3f,\n",
                 r.compression_ratio);
    std::fprintf(f, "      \"aggregates\": %d,\n", r.aggregates);
    std::fprintf(f, "      \"agg_seconds\": %.3f,\n", r.agg_seconds);
    std::fprintf(f, "      \"direct_seconds\": %.3f,\n", r.direct_seconds);
    std::fprintf(f, "      \"speedup\": %.3f,\n",
                 r.agg_seconds > 0 ? r.direct_seconds / r.agg_seconds : 0);
    std::fprintf(f, "      \"agg_qt\": %.6f,\n", r.agg_qt);
    std::fprintf(f, "      \"direct_qt\": %.6f,\n", r.direct_qt);
    std::fprintf(f, "      \"qt_inflation\": %.4f,\n",
                 r.direct_qt > 0 ? r.agg_qt / r.direct_qt : 0);
    std::fprintf(f, "      \"agg_latency_feasible\": %s,\n",
                 r.agg_latency_feasible ? "true" : "false");
    std::fprintf(f, "      \"agg_lp_calls\": %d,\n", r.agg_lp_calls);
    std::fprintf(f, "      \"direct_lp_calls\": %d,\n", r.direct_lp_calls);
    std::fprintf(f, "      \"agg_budget_exhausted\": %s,\n",
                 r.agg_budget_exhausted ? "true" : "false");
    std::fprintf(f, "      \"direct_budget_exhausted\": %s,\n",
                 r.direct_budget_exhausted ? "true" : "false");
    std::fprintf(f, "      \"agg_cert_infeasible\": %s,\n",
                 r.agg_cert_infeasible ? "true" : "false");
    std::fprintf(f, "      \"agg_repair_moves\": %d,\n", r.agg_repair_moves);
    std::fprintf(f, "      \"agg_peak_rss_kb\": %ld,\n", r.agg_peak_rss_kb);
    std::fprintf(f, "      \"peak_rss_kb\": %ld\n", r.peak_rss_kb);
    std::fprintf(f, "    }%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"dynamic_rows\": [\n");
  for (size_t i = 0; i < dyn_rows.size(); ++i) {
    const DynRow& r = dyn_rows[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"workload\": \"%s\",\n", r.workload.c_str());
    std::fprintf(f, "      \"subscribers\": %d,\n", r.subscribers);
    std::fprintf(f, "      \"add_plain_seconds\": %.3f,\n", r.plain_seconds);
    std::fprintf(f, "      \"add_agg_seconds\": %.3f,\n", r.agg_seconds);
    std::fprintf(f, "      \"subsumed_admissions\": %lld,\n",
                 static_cast<long long>(r.subsumed_admissions));
    std::fprintf(f, "      \"plain_adds_per_second\": %.0f,\n",
                 r.plain_seconds > 0 ? r.subscribers / r.plain_seconds : 0);
    std::fprintf(f, "      \"agg_adds_per_second\": %.0f,\n",
                 r.agg_seconds > 0 ? r.subscribers / r.agg_seconds : 0);
    std::fprintf(f, "      \"same_population\": %s\n",
                 r.same_population ? "true" : "false");
    std::fprintf(f, "    }%s\n", i + 1 < dyn_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path.c_str());

  if (!ok) {
    std::fprintf(stderr, "in-run checks FAILED\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace slp::bench

int main(int argc, char** argv) { return slp::bench::Main(argc, argv); }
