// Figure 7 — detailed one-level comparison on workload set #1:
//   7(a) per-workload total bandwidth for every algorithm;
//   7(b) delay-vs-shortest-path scatter (sampled) on (IS:H, BI:H);
//   7(c) broker-load five-number summaries with the β / βmax lines;
//   7(d) broker-load CDF for selected algorithms.
//
// Expected shape (paper): SLP1/Gr* bound delay at 0.3 while Gr¬l produces
// unacceptable delays (worst near the publisher); Balance/Closest balance
// load at huge bandwidth; Gr leaves >10% of brokers overloaded.

#include "bench/bench_util.h"

int main() {
  using namespace slp;
  using namespace slp::bench;

  const int subs = EnvInt("SLP_SUBS", 3000);
  const int brokers = EnvInt("SLP_BROKERS", 20);
  const uint64_t seed = EnvSeed();
  core::SaConfig config;

  // ---- 7(a): bandwidth per workload ----
  PrintHeader("Figure 7(a): total bandwidth per workload (one-level, set #1)");
  std::printf("%-10s", "algorithm");
  for (const auto& [wname, _] : Set1Variants()) {
    std::printf(" %14s", wname.c_str());
  }
  std::printf("\n");
  std::vector<std::vector<RunResult>> all_runs;  // [workload][algorithm]
  for (const auto& [wname, levels] : Set1Variants()) {
    wl::Workload w = wl::GenerateGoogleGroupsVariant(
        levels.first, levels.second, subs, brokers, seed);
    core::SaProblem problem = MakeOneLevelProblem(std::move(w), config);
    std::vector<RunResult> runs;
    for (const auto& [name, algo] : AllAlgorithms(false)) {
      runs.push_back(RunAlgorithm(name, algo, problem, seed));
    }
    all_runs.push_back(std::move(runs));
  }
  for (size_t a = 0; a < all_runs[0].size(); ++a) {
    std::printf("%-10s", all_runs[0][a].name.c_str());
    for (size_t w = 0; w < all_runs.size(); ++w) {
      std::printf(" %14.4f", all_runs[w][a].metrics.total_bandwidth);
    }
    std::printf("\n");
  }

  // The remaining panels use (IS:H, BI:H) — index 3.
  wl::Workload w = wl::GenerateGoogleGroupsVariant(
      wl::Level::kHigh, wl::Level::kHigh, subs, brokers, seed);
  core::SaProblem problem = MakeOneLevelProblem(std::move(w), config);
  const std::vector<RunResult>& runs = all_runs[3];

  // ---- 7(b): delay vs shortest-path distance scatter (sampled) ----
  PrintHeader(
      "Figure 7(b): relative delay vs shortest-path latency, (IS:H, BI:H)\n"
      "(sampled subscribers; SLP1/Gr* must stay at/below the 0.3 bound)");
  std::printf("%-10s %10s %10s\n", "algorithm", "Delta", "delay");
  for (const char* pick : {"SLP1", "Gr*", "Gr-l", "Closest-b"}) {
    for (const RunResult& r : runs) {
      if (r.name != pick) continue;
      for (int j = 0; j < problem.num_subscribers(); j += subs / 25) {
        std::printf("%-10s %10.4f %10.4f\n", pick,
                    problem.shortest_latency(j),
                    problem.RelativeDelay(j, r.solution.assignment[j]));
      }
    }
  }

  // ---- 7(c): broker-load boxplots ----
  PrintHeader("Figure 7(c): broker load distribution, (IS:H, BI:H)");
  const double desired = config.beta * subs / static_cast<double>(brokers);
  const double cap = config.beta_max * subs / static_cast<double>(brokers);
  std::printf("desired load (beta)  = %.0f subscribers/broker\n", desired);
  std::printf("maximum load (bmax)  = %.0f subscribers/broker\n", cap);
  std::printf("%-10s %6s %6s %8s %6s %6s %8s\n", "algorithm", "min", "q1",
              "median", "q3", "max", "overload");
  for (const RunResult& r : runs) {
    const core::LoadSummary s = core::SummarizeLoads(r.metrics.loads);
    int overloaded = 0;
    for (int load : r.metrics.loads) overloaded += (load > cap + 1e-9);
    std::printf("%-10s %6d %6d %8d %6d %6d %7.1f%%\n", r.name.c_str(), s.min,
                s.q1, s.median, s.q3, s.max,
                100.0 * overloaded / r.metrics.loads.size());
  }

  // ---- 7(d): broker-load CDF ----
  PrintHeader("Figure 7(d): broker load CDF, (IS:H, BI:H)");
  std::vector<int> probes;
  for (int frac = 0; frac <= 12; ++frac) {
    probes.push_back(static_cast<int>(frac * cap / 8));
  }
  std::printf("%-10s", "load<=");
  for (int p : probes) std::printf(" %6d", p);
  std::printf("\n");
  for (const char* pick : {"SLP1", "Gr*", "Gr", "Balance"}) {
    for (const RunResult& r : runs) {
      if (r.name != pick) continue;
      const auto cdf = core::LoadCdf(r.metrics.loads, probes);
      std::printf("%-10s", pick);
      for (double v : cdf) std::printf(" %6.2f", v);
      std::printf("\n");
    }
  }
  return 0;
}
