// Figure 10 — effect of filter complexity α on total bandwidth (one-level
// network, workload (IS:H, BI:H)) for SLP1, Gr*, Gr with α = 1..6.
//
// Expected shape (paper): bandwidth decreases with α for all three
// algorithms, with diminishing returns past α≈3; SLP1 is the most
// vulnerable at α = 1-2 (rounded filters may pick faraway rectangles that
// one MEB must then swallow).

#include "bench/bench_util.h"

int main() {
  using namespace slp;
  using namespace slp::bench;

  const int subs = EnvInt("SLP_SUBS", 2500);
  const int brokers = EnvInt("SLP_BROKERS", 16);
  const uint64_t seed = EnvSeed();

  PrintHeader("Figure 10: bandwidth vs filter complexity alpha (one-level, "
              "(IS:H, BI:H)); " + std::to_string(subs) + " subscribers, " +
              std::to_string(brokers) + " brokers");
  std::printf("%-6s %12s %12s %12s\n", "alpha", "SLP1", "Gr*", "Gr");

  // Calibrate β once (α does not affect achievable load balance).
  core::SaConfig base;
  {
    wl::Workload w = wl::GenerateGoogleGroupsVariant(
        wl::Level::kHigh, wl::Level::kHigh, subs, brokers, seed);
    core::SaProblem probe = MakeOneLevelProblem(std::move(w), base);
    const double floor_lbf = std::max(1.0, MinAchievableLbf(probe, seed));
    base.beta = 1.2 * floor_lbf;
    base.beta_max = 1.4 * floor_lbf;
    std::printf("[calibration] min achievable lbf=%.2f -> beta=%.2f, "
                "beta_max=%.2f\n",
                floor_lbf, base.beta, base.beta_max);
  }

  for (int alpha = 1; alpha <= 6; ++alpha) {
    core::SaConfig config = base;
    config.alpha = alpha;
    wl::Workload w = wl::GenerateGoogleGroupsVariant(
        wl::Level::kHigh, wl::Level::kHigh, subs, brokers, seed);
    core::SaProblem problem = MakeOneLevelProblem(std::move(w), config);
    const double slp1 =
        RunAlgorithm("SLP1", &RunSlp1Adapter, problem, seed).metrics.total_bandwidth;
    const double gr_star =
        RunAlgorithm("Gr*", &core::RunGrStar, problem, seed).metrics.total_bandwidth;
    const double gr =
        RunAlgorithm("Gr", &core::RunGr, problem, seed).metrics.total_bandwidth;
    std::printf("%-6d %12.4f %12.4f %12.4f\n", alpha, slp1, gr_star, gr);
  }
  return 0;
}
