// Figure 11 — SLP running time vs number of subscribers (multi-level
// network, workload set #1 baseline (IS:H, BI:L)).
//
// Expected shape (paper): roughly linear growth in the subscriber count
// (the paper reports ~4 hours at 1M subscribers / 200 brokers with CPLEX;
// this from-scratch stack runs reduced scales — the series' growth shape
// is the reproduction target).

#include "bench/bench_util.h"

int main() {
  using namespace slp;
  using namespace slp::bench;

  const int base = EnvInt("SLP_SUBS", 4000);
  const int brokers = EnvInt("SLP_BROKERS", 60);
  const int out_degree = EnvInt("SLP_OUT_DEGREE", 15);
  const uint64_t seed = EnvSeed();

  PrintHeader("Figure 11: SLP running time vs #subscribers (multi-level, "
              "(IS:H, BI:L)); " + std::to_string(brokers) +
              " brokers, out-degree <= " + std::to_string(out_degree));
  std::printf("%-12s %10s %12s %10s\n", "#subscribers", "seconds", "bandwidth",
              "lbf");

  for (int mult = 1; mult <= 5; ++mult) {
    const int subs = base * mult;
    wl::Workload w = wl::GenerateGoogleGroupsVariant(
        wl::Level::kHigh, wl::Level::kLow, subs, brokers, seed);
    core::SaProblem problem = MakeMultiLevelProblem(
        std::move(w), core::SaConfig{}, out_degree, seed);
    RunResult r = RunAlgorithm("SLP", &RunSlpAdapter, problem, seed);
    std::printf("%-12d %10.2f %12.4f %10.2f\n", subs, r.seconds,
                r.metrics.total_bandwidth, r.metrics.lbf);
  }
  return 0;
}
