// Figure 6 — overall comparison on a one-level network, workload set #1.
//
// The paper plots, per algorithm, a triangle whose vertices are total
// bandwidth, RMS delay, and STDEV of broker load, averaged over the four
// (IS, BI) workloads. This harness prints those three series (plus the lbf
// and feasibility flags the figure discusses in text).
//
// Expected shape (paper): SLP1 and Gr* minimize bandwidth while staying
// within the delay bound and the lbf cap; Gr is worse on bandwidth and
// badly unbalanced; Gr¬l undercuts everyone's bandwidth but blows up
// delay; Closest/Closest¬b/Balance keep delay/load in check at huge
// bandwidth cost.

#include <map>

#include "bench/bench_util.h"

int main() {
  using namespace slp;
  using namespace slp::bench;

  const int subs = EnvInt("SLP_SUBS", 3000);
  const int brokers = EnvInt("SLP_BROKERS", 20);
  const uint64_t seed = EnvSeed();

  core::SaConfig config;  // α=3, maxdelay=0.3, β=1.5, βmax=1.8 (paper)

  PrintHeader(
      "Figure 6: overall comparison (one-level network, workload set #1)\n"
      "averaged over (IS:L,BI:L) (IS:H,BI:L) (IS:L,BI:H) (IS:H,BI:H); " +
      std::to_string(subs) + " subscribers, " + std::to_string(brokers) +
      " brokers");

  struct Acc {
    double bandwidth = 0, rms = 0, stdev = 0, lbf = 0, secs = 0;
    int load_ok = 0, lat_ok = 0;
  };
  std::map<std::string, Acc> acc;
  std::vector<std::string> order;

  const auto variants = Set1Variants();
  for (const auto& [wname, levels] : variants) {
    wl::Workload w = wl::GenerateGoogleGroupsVariant(
        levels.first, levels.second, subs, brokers, seed);
    core::SaProblem problem = MakeOneLevelProblem(std::move(w), config);
    for (const auto& [name, algo] : AllAlgorithms(/*multi_level=*/false)) {
      RunResult r = RunAlgorithm(name, algo, problem, seed);
      if (acc.find(name) == acc.end()) order.push_back(name);
      Acc& a = acc[name];
      a.bandwidth += r.metrics.total_bandwidth / variants.size();
      a.rms += r.metrics.rms_delay / variants.size();
      a.stdev += r.metrics.load_stdev / variants.size();
      a.lbf += r.metrics.lbf / variants.size();
      a.secs += r.seconds;
      a.load_ok += r.solution.load_feasible;
      a.lat_ok += r.solution.latency_feasible;
      std::printf("  [%s] %-10s bw=%8.4f rms_delay=%6.3f stdev_load=%7.1f "
                  "lbf=%5.2f (%s, %.1fs)\n",
                  wname.c_str(), name.c_str(), r.metrics.total_bandwidth,
                  r.metrics.rms_delay, r.metrics.load_stdev, r.metrics.lbf,
                  Feasibility(r.solution), r.seconds);
    }
  }

  std::printf("\n%-10s %12s %10s %12s %6s %9s %9s\n", "algorithm",
              "bandwidth", "rms_delay", "stdev_load", "lbf", "load_ok/4",
              "lat_ok/4");
  for (const std::string& name : order) {
    const Acc& a = acc[name];
    std::printf("%-10s %12.4f %10.3f %12.1f %6.2f %9d %9d\n", name.c_str(),
                a.bandwidth, a.rms, a.stdev, a.lbf, a.load_ok, a.lat_ok);
  }
  return 0;
}
