// Micro-benchmarks for the substrates (google-benchmark): simplex, Dinic
// max-flow, union volume, candidate filter generation, k-means. These are
// not paper figures; they document the cost of the building blocks.

#include <benchmark/benchmark.h>

#include "src/common/random.h"
#include "src/core/candidates.h"
#include "src/core/filter_gen.h"
#include "src/core/slp.h"
#include "src/flow/max_flow.h"
#include "src/geometry/clustering.h"
#include "src/geometry/filter.h"
#include "src/geometry/union_volume.h"
#include "src/geometry/volume_memo.h"
#include "src/lp/simplex.h"
#include "src/network/tree_builder.h"
#include "src/workload/googlegroups.h"

namespace {

using namespace slp;

void BM_SimplexAssignmentLp(benchmark::State& state) {
  // A covering/packing LP shaped like LPRelax: n items, t targets.
  const int items = static_cast<int>(state.range(0));
  const int targets = 10;
  Rng rng(1);
  lp::LpProblem p;
  std::vector<std::vector<int>> x(items);
  for (int i = 0; i < items; ++i) {
    for (int t = 0; t < targets; ++t) {
      x[i].push_back(p.AddVariable(rng.Uniform(0, 1), 0, 1));
    }
  }
  for (int i = 0; i < items; ++i) {
    int row = p.AddConstraint(lp::Sense::kGreaterEqual, 1);
    for (int t = 0; t < targets; ++t) p.AddEntry(row, x[i][t], 1);
  }
  for (int t = 0; t < targets; ++t) {
    int row = p.AddConstraint(lp::Sense::kLessEqual, 1.5 * items / targets);
    for (int i = 0; i < items; ++i) p.AddEntry(row, x[i][t], 1);
  }
  for (auto _ : state) {
    auto sol = lp::SimplexSolver().Solve(p);
    benchmark::DoNotOptimize(sol.objective);
  }
}
BENCHMARK(BM_SimplexAssignmentLp)->Arg(50)->Arg(200)->Arg(500);

void BM_DinicBipartite(benchmark::State& state) {
  const int subs = static_cast<int>(state.range(0));
  const int brokers = 50;
  Rng rng(2);
  for (auto _ : state) {
    flow::MaxFlow mf(2 + brokers + subs);
    for (int b = 0; b < brokers; ++b) {
      mf.AddEdge(0, 2 + b, subs / brokers + 2);
    }
    for (int j = 0; j < subs; ++j) {
      mf.AddEdge(2 + brokers + j, 1, 1);
      for (int e = 0; e < 5; ++e) {
        mf.AddEdge(2 + rng.UniformInt(0, brokers - 1), 2 + brokers + j, 1);
      }
    }
    benchmark::DoNotOptimize(mf.Solve(0, 1));
  }
}
BENCHMARK(BM_DinicBipartite)->Arg(1000)->Arg(10000)->Arg(50000);

std::vector<geo::Rectangle> OverlappingSquares(int n) {
  Rng rng(3);
  std::vector<geo::Rectangle> rs;
  rs.reserve(n);
  for (int i = 0; i < n; ++i) {
    double x = rng.Uniform(0, 0.8), y = rng.Uniform(0, 0.8);
    rs.push_back(geo::Rectangle({x, y}, {x + 0.2, y + 0.2}));
  }
  return rs;
}

// The Q(T) hot path: repeated exact-volume evaluation of an unchanged
// broker filter, as core::metrics and core::dynamic issue it. After the
// first iteration this is a content-hash memo hit.
void BM_UnionVolume(benchmark::State& state) {
  geo::Filter f(OverlappingSquares(static_cast<int>(state.range(0))));
  geo::VolumeMemo::Global().Clear();
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::VolumeMemo::Global().UnionVolume(f));
  }
}
BENCHMARK(BM_UnionVolume)->Arg(3)->Arg(6)->Arg(10)->Arg(20);

// Uncached engine dispatch (inclusion-exclusion for n <= 4, sweep above).
void BM_UnionVolumeExact(benchmark::State& state) {
  geo::Filter f(OverlappingSquares(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.UnionVolume());
  }
}
BENCHMARK(BM_UnionVolumeExact)->Arg(3)->Arg(6)->Arg(10)->Arg(20);

// The two exact engines head to head on the same inputs. Inclusion-
// exclusion is exponential in the worst case, so its arg range stops where
// the subset blowup starts; the sweep stays polynomial through n = 50.
void BM_UnionVolumeIE(benchmark::State& state) {
  auto rs = OverlappingSquares(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::InclusionExclusionUnionVolume(rs));
  }
}
BENCHMARK(BM_UnionVolumeIE)->Arg(6)->Arg(10)->Arg(14)->Arg(18);

void BM_UnionVolumeSweep(benchmark::State& state) {
  auto rs = OverlappingSquares(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(geo::SweepUnionVolume(rs));
  }
}
BENCHMARK(BM_UnionVolumeSweep)->Arg(6)->Arg(10)->Arg(20)->Arg(50);

void BM_FilterGen(benchmark::State& state) {
  const int subs = static_cast<int>(state.range(0));
  wl::Workload w = wl::GenerateGoogleGroupsVariant(
      wl::Level::kHigh, wl::Level::kLow, subs, 20, 4);
  net::BrokerTree tree = net::BuildOneLevelTree(w.publisher, w.broker_locations);
  core::SaProblem p(std::move(tree), std::move(w.subscribers),
                    core::SaConfig{});
  Rng rng(4);
  for (auto _ : state) {
    auto rects =
        core::FilterGen(p, core::AllSubscribers(p), 20, {}, rng);
    benchmark::DoNotOptimize(rects.size());
  }
}
BENCHMARK(BM_FilterGen)->Arg(200)->Arg(1000);

void BM_KMeans(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(5);
  std::vector<geo::Point> pts;
  for (int i = 0; i < n; ++i) {
    pts.push_back({rng.Uniform(0, 1), rng.Uniform(0, 1), rng.Uniform(0, 1),
                   rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  for (auto _ : state) {
    auto r = geo::KMeans(pts, 20, rng);
    benchmark::DoNotOptimize(r.centers.size());
  }
}
BENCHMARK(BM_KMeans)->Arg(1000)->Arg(10000);

// Serial vs pool-backed SLP recursion on a multi-level tree. Arg 0 pins
// the child-subtree fan-out and repair covering to one thread; arg 1 uses
// the shared pool. Outputs are bit-identical either way (see
// SlpTest.ParallelMatchesSerialBitIdentical); only wall time may differ.
void BM_SlpMultiLevel(benchmark::State& state) {
  wl::Workload w = wl::GenerateGoogleGroupsVariant(
      wl::Level::kHigh, wl::Level::kLow, 600, 20, 4);
  Rng tree_rng(7);
  net::BrokerTree tree = net::BuildMultiLevelTree(
      w.publisher, w.broker_locations, 5, tree_rng);
  core::SaProblem p(std::move(tree), std::move(w.subscribers),
                    core::SaConfig{});
  core::SlpOptions opts;
  opts.num_threads = state.range(0) == 0 ? 1 : 0;
  for (auto _ : state) {
    Rng rng(11);
    auto r = core::RunSlp(p, opts, rng);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_SlpMultiLevel)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
